(* The paged durable store: all state lives in one [pages.db] file of
   4 KiB pages behind {!Pager}. Tuples sit in slotted heap pages and are
   addressed by TIDs; a {!Btree} keyed on (relation, attribute, label)
   indexes every tuple coordinate; a free-space map page set records
   per-heap-page fill; a small DDL blob (a skeleton {!Snapshot} plus the
   relation-id map) carries hierarchies, schemas and observed stats.

   Durability is shadow paging: committed pages are never overwritten.
   A logical->physical page table gives every page a stable logical id
   (TIDs and B-tree child pointers use logical ids); the first
   modification of a logical page in a checkpoint cycle relocates it to
   a free physical page. Commit stamps each dirty page with its logical
   id and a CRC, flushes and fsyncs data, writes a fresh page table,
   then publishes everything by writing the alternate of two meta pages
   (physical 0 and 1, picked at open by valid CRC + highest epoch) and
   fsyncing again. A crash at any point leaves the previous epoch fully
   intact. *)

module Hierarchy = Hr_hierarchy.Hierarchy
module W = Codec.Writer
module R = Codec.Reader
open Hierel

exception Corrupt of string

let corrupt fmt = Format.kasprintf (fun s -> raise (Corrupt s)) fmt

let g_dirty = Hr_obs.Metrics.gauge "storage.checkpoint.dirty_pages"
let g_total = Hr_obs.Metrics.gauge "storage.checkpoint.pages_total"

let page_size = Pager.page_size
let header = 16
let tag_heap = 1
let tag_freemap = 2
(* 3 and 4 are the B-tree's leaf/internal tags *)
let tag_blob = 5
let meta_magic = "HRPGMETA"
let meta_version = 1

(* Free-space map entries are 8 bytes: [u32 heap page][u16 free][u16 live]. *)
let fm_per_page = (page_size - header) / 8
let pt_per_page = page_size / 4

let get_u16 b off = Char.code (Bytes.get b off) lor (Char.code (Bytes.get b (off + 1)) lsl 8)

let set_u16 b off v =
  Bytes.set b off (Char.chr (v land 0xff));
  Bytes.set b (off + 1) (Char.chr ((v lsr 8) land 0xff))

let get_u32 b off = get_u16 b off lor (get_u16 b (off + 2) lsl 16)

let set_u32 b off v =
  set_u16 b off (v land 0xffff);
  set_u16 b (off + 2) ((v lsr 16) land 0xffff)

type t = {
  pager : Pager.t;
  mutable epoch : int;
  mutable base_lsn : int;
  mutable pt : int array; (* logical -> physical; 0 = unmapped *)
  mutable n_logical : int;
  mutable free_logical : int list;
  mutable free_phys : int list;
  mutable pending_free : int list; (* physicals released after the next commit *)
  mutable pt_pages : int list; (* physical pages holding the live page table *)
  mutable btree_root : int; (* logical *)
  mutable blob : string;
  mutable blob_pages : int list; (* logical *)
  mutable freemap_pages : int list; (* logical, in slot order *)
  mutable fm_next_slot : int;
  shadowed : (int, unit) Hashtbl.t; (* logicals already relocated this cycle *)
  dirty : (int, unit) Hashtbl.t;
  free_space : (int, int * int) Hashtbl.t; (* heap logical -> (free, live) *)
  fm_slot : (int, int) Hashtbl.t; (* heap logical -> freemap slot *)
  mutable fill_page : int option; (* current insertion target *)
  mutable rel_ids : (string * int) list;
  mutable next_rel_id : int;
  tids : (string, (string, int) Hashtbl.t) Hashtbl.t; (* rel -> labels-key -> tid *)
}

(* ---- physical allocation and shadow relocation ------------------------ *)

let alloc_phys t =
  match t.free_phys with
  | p :: rest ->
    t.free_phys <- rest;
    p
  | [] -> Pager.allocate t.pager

let resolve t logical =
  let p = t.pt.(logical) in
  if p = 0 then corrupt "logical page %d is unmapped" logical;
  p

let read_logical t logical = Pager.read_page t.pager (resolve t logical)

(* Copy-on-write: the first modification of a committed logical page in
   this cycle moves it to a fresh physical page; the old physical joins
   [pending_free] and is only reusable after the next commit, so a crash
   mid-cycle still finds the previous epoch's bytes untouched. *)
let shadow t logical =
  if not (Hashtbl.mem t.shadowed logical) then begin
    let p_old = t.pt.(logical) in
    let copy = Bytes.copy (Pager.read_page t.pager p_old) in
    let p_new = alloc_phys t in
    Pager.with_page t.pager p_new (fun b -> Bytes.blit copy 0 b 0 page_size);
    t.pt.(logical) <- p_new;
    t.pending_free <- p_old :: t.pending_free;
    Hashtbl.replace t.shadowed logical ()
  end

let modify_logical t logical f =
  shadow t logical;
  Hashtbl.replace t.dirty logical ();
  Pager.with_page t.pager t.pt.(logical) f

let grow_pt t =
  let cap = Array.length t.pt in
  if t.n_logical >= cap then begin
    let bigger = Array.make (max 64 (2 * cap)) 0 in
    Array.blit t.pt 0 bigger 0 cap;
    t.pt <- bigger
  end

let alloc_logical t =
  let l =
    match t.free_logical with
    | l :: rest ->
      t.free_logical <- rest;
      l
    | [] ->
      grow_pt t;
      let l = t.n_logical in
      t.n_logical <- t.n_logical + 1;
      l
  in
  let p = alloc_phys t in
  t.pt.(l) <- p;
  Hashtbl.replace t.shadowed l (); (* fresh: nothing older to preserve *)
  Hashtbl.replace t.dirty l ();
  Pager.with_page t.pager p (fun b -> Bytes.fill b 0 page_size '\000');
  l

let free_logical_page t l =
  t.pending_free <- t.pt.(l) :: t.pending_free;
  t.pt.(l) <- 0;
  t.free_logical <- l :: t.free_logical;
  Hashtbl.remove t.dirty l;
  Hashtbl.remove t.shadowed l

let bt_pages t =
  {
    Btree.read = (fun l -> read_logical t l);
    modify = (fun l f -> modify_logical t l f);
    alloc = (fun () -> alloc_logical t);
    free = (fun l -> free_logical_page t l);
  }

(* ---- meta pages -------------------------------------------------------- *)

let encode_meta t ~epoch ~base_lsn ~pt_pages =
  let w = W.create () in
  W.string w meta_magic;
  W.u32 w meta_version;
  W.u32 w epoch;
  W.u32 w base_lsn;
  W.u32 w t.n_logical;
  W.u32 w t.btree_root;
  W.list w W.u32 t.blob_pages;
  W.list w W.u32 t.freemap_pages;
  W.list w W.u32 pt_pages;
  let body = W.contents w in
  if String.length body + 4 > page_size then
    failwith "Page_store: store too large for a single meta page";
  let page = Bytes.make page_size '\000' in
  Bytes.blit_string body 0 page 0 (String.length body);
  (* CRC over the whole zero-padded prefix so decode needs no length *)
  let crc = Codec.crc32 (Bytes.sub_string page 0 (page_size - 4)) in
  set_u32 page (page_size - 4) (Int32.to_int crc land 0xFFFFFFFF);
  page

type meta = {
  m_epoch : int;
  m_base_lsn : int;
  m_n_logical : int;
  m_btree_root : int;
  m_blob_pages : int list;
  m_freemap_pages : int list;
  m_pt_pages : int list;
}

let decode_meta page =
  try
    let body = Bytes.sub_string page 0 (page_size - 4) in
    let stored = get_u32 page (page_size - 4) in
    if Int32.to_int (Codec.crc32 body) land 0xFFFFFFFF <> stored then None
    else begin
      let r = R.of_string body in
      if R.string r <> meta_magic then None
      else if R.u32 r <> meta_version then None
      else
        let m_epoch = R.u32 r in
        let m_base_lsn = R.u32 r in
        let m_n_logical = R.u32 r in
        let m_btree_root = R.u32 r in
        let m_blob_pages = R.list r R.u32 in
        let m_freemap_pages = R.list r R.u32 in
        let m_pt_pages = R.list r R.u32 in
        Some { m_epoch; m_base_lsn; m_n_logical; m_btree_root; m_blob_pages; m_freemap_pages; m_pt_pages }
    end
  with R.Corrupt _ -> None

(* ---- slotted heap pages ------------------------------------------------

   Header fields: count (slots in the directory) at 2, data_start (low
   edge of the packed data region, grows downward from page_size) at 4,
   live (non-tombstone slots) at 6. The slot directory starts at 16,
   4 bytes per slot: [u16 off][u16 len]; off = 0 marks a tombstone.
   TID = logical_page * 65536 + slot; compaction repacks the data region
   but never renumbers slots, and tombstone slots are reused first, so
   TIDs stay stable and bounded. *)

let slot_off i = header + (4 * i)
let tid_of ~page ~slot = (page * 65536) + slot
let tid_page tid = tid / 65536
let tid_slot tid = tid mod 65536

(* free = page_size - header - 4*count - (live record bytes): the space
   an insert can claim after compaction, assuming it needs a fresh slot.
   Deletes give back record bytes only (the slot stays, reusable). *)
let computed_free b =
  let count = get_u16 b 2 in
  let live_bytes = ref 0 in
  for i = 0 to count - 1 do
    if get_u16 b (slot_off i) <> 0 then live_bytes := !live_bytes + get_u16 b (slot_off i + 2)
  done;
  page_size - header - (4 * count) - !live_bytes

let init_heap_page b =
  Bytes.fill b 0 page_size '\000';
  Bytes.set b 0 (Char.chr tag_heap);
  set_u16 b 4 page_size

(* Repack the data region (live records only) against the page end;
   slots keep their numbers, offsets are rewritten. Uses a scratch copy
   because source and destination ranges overlap. *)
let compact_heap b =
  let scratch = Bytes.copy b in
  let count = get_u16 b 2 in
  let cursor = ref page_size in
  for i = 0 to count - 1 do
    let off = get_u16 scratch (slot_off i) in
    if off <> 0 then begin
      let len = get_u16 scratch (slot_off i + 2) in
      cursor := !cursor - len;
      Bytes.blit scratch off b !cursor len;
      set_u16 b (slot_off i) !cursor
    end
  done;
  set_u16 b 4 !cursor

(* ---- tuple records ----------------------------------------------------- *)

let encode_record ~rel_id ~sign labels =
  let w = W.create () in
  W.u32 w rel_id;
  W.u8 w (match sign with Types.Pos -> 1 | Types.Neg -> 0);
  W.list w W.string labels;
  W.contents w

let decode_record s =
  let r = R.of_string s in
  let rel_id = R.u32 r in
  let sign = if R.u8 r = 1 then Types.Pos else Types.Neg in
  let labels = R.list r R.string in
  (rel_id, sign, labels)

let labels_key labels = String.concat "\x00" labels
let split_key key = String.split_on_char '\x00' key

(* B-tree key: rel id and attribute index big-endian (so byte order
   groups by relation then attribute), then the label, truncated to the
   tree's key bound. Truncation is safe: readers post-filter on the
   record's full label. *)
let bt_key ~rel_id ~attr label =
  let lab =
    if String.length label > Btree.max_key - 6 then String.sub label 0 (Btree.max_key - 6)
    else label
  in
  let b = Bytes.create (6 + String.length lab) in
  Bytes.set b 0 (Char.chr ((rel_id lsr 24) land 0xff));
  Bytes.set b 1 (Char.chr ((rel_id lsr 16) land 0xff));
  Bytes.set b 2 (Char.chr ((rel_id lsr 8) land 0xff));
  Bytes.set b 3 (Char.chr (rel_id land 0xff));
  Bytes.set b 4 (Char.chr ((attr lsr 8) land 0xff));
  Bytes.set b 5 (Char.chr (attr land 0xff));
  Bytes.blit_string lab 0 b 6 (String.length lab);
  Bytes.to_string b

let parse_bt_key key =
  let byte i = Char.code key.[i] in
  let rel_id = (byte 0 lsl 24) lor (byte 1 lsl 16) lor (byte 2 lsl 8) lor byte 3 in
  let attr = (byte 4 lsl 8) lor byte 5 in
  (rel_id, attr, String.sub key 6 (String.length key - 6))

(* ---- free-space map ----------------------------------------------------

   One 8-byte entry per heap page at a fixed slot assigned on the page's
   first use; slot s lives in freemap page s / fm_per_page at index
   s mod fm_per_page. Entries 0 .. count-1 of each freemap page are
   valid (slots are handed out sequentially and never reclaimed). *)

let fm_update t heap_l =
  let free, live =
    match Hashtbl.find_opt t.free_space heap_l with Some fl -> fl | None -> (0, 0)
  in
  let slot =
    match Hashtbl.find_opt t.fm_slot heap_l with
    | Some s -> s
    | None ->
      let s = t.fm_next_slot in
      t.fm_next_slot <- s + 1;
      Hashtbl.replace t.fm_slot heap_l s;
      if s / fm_per_page >= List.length t.freemap_pages then begin
        let l = alloc_logical t in
        modify_logical t l (fun b ->
            Bytes.fill b 0 page_size '\000';
            Bytes.set b 0 (Char.chr tag_freemap));
        t.freemap_pages <- t.freemap_pages @ [ l ]
      end;
      s
  in
  let fm_l = List.nth t.freemap_pages (slot / fm_per_page) in
  let idx = slot mod fm_per_page in
  modify_logical t fm_l (fun b ->
      let count = get_u16 b 2 in
      if idx >= count then set_u16 b 2 (idx + 1);
      let off = header + (8 * idx) in
      set_u32 b off heap_l;
      set_u16 b (off + 4) (max 0 free);
      set_u16 b (off + 6) live)

(* ---- tuple insert / delete --------------------------------------------- *)

let alloc_heap_page t =
  let l = alloc_logical t in
  modify_logical t l init_heap_page;
  Hashtbl.replace t.free_space l (page_size - header, 0);
  fm_update t l;
  l

(* First fit: the sticky fill page, then the free-space map, then a
   fresh page. [need] is conservative (assumes a fresh slot). *)
let place t need =
  let fits l =
    match Hashtbl.find_opt t.free_space l with Some (free, _) -> free >= need | None -> false
  in
  match t.fill_page with
  | Some l when fits l -> l
  | _ ->
    let found = ref None in
    (try
       Hashtbl.iter (fun l (free, _) -> if free >= need then (found := Some l; raise Exit)) t.free_space
     with Exit -> ());
    let l = match !found with Some l -> l | None -> alloc_heap_page t in
    t.fill_page <- Some l;
    l

let rel_tids t name =
  match Hashtbl.find_opt t.tids name with
  | Some tbl -> tbl
  | None ->
    let tbl = Hashtbl.create 64 in
    Hashtbl.replace t.tids name tbl;
    tbl

let insert_tuple t ~rel ~rel_id ~sign labels =
  let record = encode_record ~rel_id ~sign labels in
  let len = String.length record in
  if len + 4 > page_size - header then
    failwith (Printf.sprintf "Page_store: tuple of %d bytes exceeds page capacity" len);
  let l = place t (len + 4) in
  let slot = ref 0 in
  let new_slot = ref false in
  modify_logical t l (fun b ->
      let count = get_u16 b 2 in
      let live = get_u16 b 6 in
      (* tombstone slots first: keeps TIDs dense and the directory small *)
      let s = ref (-1) in
      (try
         for i = 0 to count - 1 do
           if get_u16 b (slot_off i) = 0 then begin
             s := i;
             raise Exit
           end
         done
       with Exit -> ());
      new_slot := !s = -1;
      let si = if !new_slot then count else !s in
      let dir_end = header + (4 * if !new_slot then count + 1 else count) in
      if get_u16 b 4 - dir_end < len then compact_heap b;
      let data_start = get_u16 b 4 in
      assert (data_start - dir_end >= len);
      let off = data_start - len in
      Bytes.blit_string record 0 b off len;
      set_u16 b (slot_off si) off;
      set_u16 b (slot_off si + 2) len;
      if !new_slot then set_u16 b 2 (count + 1);
      set_u16 b 6 (live + 1);
      set_u16 b 4 off;
      slot := si);
  let free, live =
    match Hashtbl.find_opt t.free_space l with Some fl -> fl | None -> (0, 0)
  in
  Hashtbl.replace t.free_space l ((free - len - if !new_slot then 4 else 0), live + 1);
  fm_update t l;
  let tid = tid_of ~page:l ~slot:!slot in
  let pages = bt_pages t in
  List.iteri
    (fun attr label ->
      t.btree_root <- Btree.insert pages ~root:t.btree_root ~key:(bt_key ~rel_id ~attr label) ~tid)
    labels;
  Hashtbl.replace (rel_tids t rel) (labels_key labels) tid;
  tid

let delete_tuple t ~rel ~rel_id labels =
  let key = labels_key labels in
  let tbl = rel_tids t rel in
  match Hashtbl.find_opt tbl key with
  | None -> ()
  | Some tid ->
    let l = tid_page tid and s = tid_slot tid in
    let len = ref 0 in
    modify_logical t l (fun b ->
        len := get_u16 b (slot_off s + 2);
        set_u16 b (slot_off s) 0;
        set_u16 b (slot_off s + 2) 0;
        set_u16 b 6 (get_u16 b 6 - 1));
    let free, live =
      match Hashtbl.find_opt t.free_space l with Some fl -> fl | None -> (0, 1)
    in
    Hashtbl.replace t.free_space l (free + !len, live - 1);
    fm_update t l;
    let pages = bt_pages t in
    List.iteri
      (fun attr label ->
        t.btree_root <- Btree.delete pages ~root:t.btree_root ~key:(bt_key ~rel_id ~attr label) ~tid)
      labels;
    Hashtbl.remove tbl key

(* ---- DDL blob ----------------------------------------------------------

   Hierarchies, schemas, observed stats and the relation-id map, spread
   over [tag_blob] pages listed in the meta. The schema-bearing part is
   a skeleton {!Snapshot} (every relation encoded empty), so the blob is
   O(schema + stats), not O(data), and the interchange codec is reused
   verbatim. *)

let blob_cap = page_size - header

let encode_blob ~skeleton ~rel_ids ~next_rel_id =
  let w = W.create () in
  W.string w skeleton;
  W.list w
    (fun w (name, id) ->
      W.string w name;
      W.u32 w id)
    rel_ids;
  W.u32 w next_rel_id;
  W.contents w

let decode_blob blob =
  if blob = "" then ("", [], 0)
  else
    try
      let r = R.of_string blob in
      let skeleton = R.string r in
      let rel_ids =
        R.list r (fun r ->
            let name = R.string r in
            let id = R.u32 r in
            (name, id))
      in
      let next = R.u32 r in
      (skeleton, rel_ids, next)
    with R.Corrupt msg -> corrupt "DDL blob: %s" msg

let skeleton_of_catalog cat =
  let sk = Catalog.create () in
  List.iter (Catalog.define_hierarchy sk) (Catalog.hierarchies cat);
  List.iter
    (fun rel ->
      Catalog.define_relation ~check:false sk
        (Relation.empty ~name:(Relation.name rel) (Relation.schema rel)))
    (Catalog.relations cat);
  List.iter
    (fun ((rel, label), count) -> Catalog.record_stat sk ~rel ~label count)
    (Catalog.observed_stats cat);
  Snapshot.encode sk

let set_ddl t cat =
  let blob =
    encode_blob ~skeleton:(skeleton_of_catalog cat) ~rel_ids:t.rel_ids
      ~next_rel_id:t.next_rel_id
  in
  if not (String.equal blob t.blob) then begin
    let len = String.length blob in
    let chunks = (len + blob_cap - 1) / blob_cap in
    while List.length t.blob_pages < chunks do
      t.blob_pages <- t.blob_pages @ [ alloc_logical t ]
    done;
    while List.length t.blob_pages > chunks do
      match List.rev t.blob_pages with
      | last :: _ ->
        free_logical_page t last;
        t.blob_pages <- List.filter (fun l -> l <> last) t.blob_pages
      | [] -> assert false
    done;
    List.iteri
      (fun i l ->
        let off = i * blob_cap in
        let n = min blob_cap (len - off) in
        modify_logical t l (fun b ->
            Bytes.fill b 0 page_size '\000';
            Bytes.set b 0 (Char.chr tag_blob);
            set_u16 b 4 n;
            Bytes.blit_string blob off b header n))
      t.blob_pages;
    t.blob <- blob
  end

(* ---- commit ------------------------------------------------------------ *)

let rel_id_of t name =
  match List.assoc_opt name t.rel_ids with
  | Some id -> id
  | None ->
    let id = t.next_rel_id in
    t.next_rel_id <- id + 1;
    t.rel_ids <- (name, id) :: t.rel_ids;
    id

(* Set (via [Testing]) to make the next commit die after the data flush
   but before the meta-root swap — the kill -9 recovery tests' window. *)
let crash_before_meta = ref false

let stamp_crc b =
  set_u32 b 12 0;
  let crc = Int32.to_int (Codec.crc32 (Bytes.to_string b)) land 0xFFFFFFFF in
  set_u32 b 12 crc

let commit t ?(fsync = true) ~base_lsn () =
  (* 1. seal every dirty page: logical id + CRC in the shared header *)
  let dirty = Hashtbl.fold (fun l () acc -> if t.pt.(l) <> 0 then l :: acc else acc) t.dirty [] in
  List.iter
    (fun l ->
      Pager.with_page t.pager t.pt.(l) (fun b ->
          set_u32 b 8 l;
          stamp_crc b))
    dirty;
  (* 2. fresh page table into physicals unreferenced by the live meta *)
  let n_pt = max 1 ((t.n_logical + pt_per_page - 1) / pt_per_page) in
  let new_pt_pages = List.init n_pt (fun _ -> alloc_phys t) in
  List.iteri
    (fun i p ->
      Pager.with_page t.pager p (fun b ->
          Bytes.fill b 0 page_size '\000';
          for j = 0 to pt_per_page - 1 do
            let l = (i * pt_per_page) + j in
            if l < t.n_logical then set_u32 b (4 * j) t.pt.(l)
          done))
    new_pt_pages;
  (* 3. data + page table durable before the root moves *)
  Pager.flush t.pager;
  if fsync then Pager.fsync t.pager;
  if !crash_before_meta then Unix._exit 137;
  (* 4. atomic root swap: the alternate meta slot, then fsync *)
  let epoch = t.epoch + 1 in
  let meta = encode_meta t ~epoch ~base_lsn ~pt_pages:new_pt_pages in
  Pager.write_page t.pager (epoch land 1) meta;
  Pager.flush t.pager;
  if fsync then Pager.fsync t.pager;
  (* 5. the previous epoch's relocated pages become reusable *)
  t.free_phys <- t.pending_free @ t.pt_pages @ t.free_phys;
  t.pending_free <- [];
  t.pt_pages <- new_pt_pages;
  t.epoch <- epoch;
  t.base_lsn <- base_lsn;
  Hashtbl.reset t.shadowed;
  Hashtbl.reset t.dirty;
  let written = List.length dirty + n_pt + 1 in
  let total = Pager.page_count t.pager in
  Hr_obs.Metrics.set g_dirty written;
  Hr_obs.Metrics.set g_total total;
  (written, total)

(* ---- create / open ----------------------------------------------------- *)

let fresh pager =
  {
    pager;
    epoch = 0;
    base_lsn = 0;
    pt = Array.make 64 0;
    n_logical = 0;
    free_logical = [];
    free_phys = [];
    pending_free = [];
    pt_pages = [];
    btree_root = 0;
    blob = "";
    blob_pages = [];
    freemap_pages = [];
    fm_next_slot = 0;
    shadowed = Hashtbl.create 64;
    dirty = Hashtbl.create 64;
    free_space = Hashtbl.create 64;
    fm_slot = Hashtbl.create 64;
    fill_page = None;
    rel_ids = [];
    next_rel_id = 1;
    tids = Hashtbl.create 16;
  }

let create ?(pool_pages = 256) path =
  if Sys.file_exists path then Sys.remove path;
  let pager = Pager.create ~pool_pages path in
  (* physicals 0 and 1 are the two meta slots, forever *)
  ignore (Pager.allocate pager);
  ignore (Pager.allocate pager);
  let t = fresh pager in
  t.btree_root <- Btree.create (bt_pages t);
  t

let open_ ?(pool_pages = 256) path =
  let pager = Pager.create ~pool_pages ~repair_partial:true path in
  let phys = Pager.page_count pager in
  if phys < 2 then corrupt "%s: missing meta pages" path;
  let pick =
    match
      (decode_meta (Pager.read_page pager 0), decode_meta (Pager.read_page pager 1))
    with
    | Some a, Some b -> if a.m_epoch >= b.m_epoch then a else b
    | Some a, None -> a
    | None, Some b -> b
    | None, None -> corrupt "%s: both meta pages are corrupt" path
  in
  let t = fresh pager in
  t.epoch <- pick.m_epoch;
  t.base_lsn <- pick.m_base_lsn;
  t.n_logical <- pick.m_n_logical;
  t.btree_root <- pick.m_btree_root;
  t.blob_pages <- pick.m_blob_pages;
  t.freemap_pages <- pick.m_freemap_pages;
  t.pt_pages <- pick.m_pt_pages;
  t.pt <- Array.make (max 64 pick.m_n_logical) 0;
  (* page table *)
  let seen_phys = Hashtbl.create 256 in
  Hashtbl.replace seen_phys 0 ();
  Hashtbl.replace seen_phys 1 ();
  List.iteri
    (fun i p ->
      if p < 2 || p >= phys then corrupt "meta references page-table page %d out of range" p;
      Hashtbl.replace seen_phys p ();
      let b = Pager.read_page pager p in
      for j = 0 to pt_per_page - 1 do
        let l = (i * pt_per_page) + j in
        if l < t.n_logical then t.pt.(l) <- get_u32 b (4 * j)
      done)
    pick.m_pt_pages;
  for l = 0 to t.n_logical - 1 do
    let p = t.pt.(l) in
    if p = 0 then t.free_logical <- l :: t.free_logical
    else begin
      if p < 2 || p >= phys then corrupt "logical page %d maps to physical %d out of range" l p;
      if Hashtbl.mem seen_phys p then corrupt "physical page %d is mapped twice" p;
      Hashtbl.replace seen_phys p ()
    end
  done;
  for p = 2 to phys - 1 do
    if not (Hashtbl.mem seen_phys p) then t.free_phys <- p :: t.free_phys
  done;
  (* DDL blob *)
  let buf = Buffer.create 4096 in
  List.iter
    (fun l ->
      let b = read_logical t l in
      if Char.code (Bytes.get b 0) <> tag_blob then corrupt "page %d is not a blob page" l;
      Buffer.add_subbytes buf b header (get_u16 b 4))
    t.blob_pages;
  t.blob <- Buffer.contents buf;
  let _, rel_ids, next = decode_blob t.blob in
  t.rel_ids <- rel_ids;
  t.next_rel_id <- max 1 next;
  (* free-space map *)
  List.iteri
    (fun ordinal l ->
      let b = read_logical t l in
      if Char.code (Bytes.get b 0) <> tag_freemap then corrupt "page %d is not a freemap page" l;
      let count = get_u16 b 2 in
      for j = 0 to count - 1 do
        let off = header + (8 * j) in
        let heap_l = get_u32 b off in
        Hashtbl.replace t.free_space heap_l (get_u16 b (off + 4), get_u16 b (off + 6));
        Hashtbl.replace t.fm_slot heap_l ((ordinal * fm_per_page) + j)
      done;
      t.fm_next_slot <- (ordinal * fm_per_page) + count)
    t.freemap_pages;
  t

let close t = Pager.close t.pager
let base_lsn t = t.base_lsn
let epoch t = t.epoch
let pager t = t.pager
let btree_root t = t.btree_root

(* ---- catalog reconstruction (recovery) --------------------------------- *)

let iter_heap_slots t f =
  for l = 0 to t.n_logical - 1 do
    if t.pt.(l) <> 0 then begin
      let b = read_logical t l in
      if Char.code (Bytes.get b 0) = tag_heap then begin
        let count = get_u16 b 2 in
        for s = 0 to count - 1 do
          let off = get_u16 b (slot_off s) in
          if off <> 0 then begin
            let len = get_u16 b (slot_off s + 2) in
            f ~tid:(tid_of ~page:l ~slot:s) (Bytes.sub_string b off len)
          end
        done
      end
    end
  done

(* Rebuild the in-memory catalog (and this store's TID maps) from pages:
   the skeleton snapshot gives hierarchies, schemas and stats; the heap
   scan refills every relation's tuples. This is recovery's
   counterpart of the old full-snapshot decode — reads stay O(data),
   only checkpoint writes became O(delta). *)
let to_catalog t =
  let skeleton, _, _ = decode_blob t.blob in
  if skeleton = "" then Catalog.create ()
  else begin
    let cat =
      try Snapshot.decode ~check:false skeleton
      with Snapshot.Corrupt_snapshot msg -> corrupt "DDL skeleton: %s" msg
    in
    let by_id = Hashtbl.create 16 in
    List.iter
      (fun (name, id) ->
        match Catalog.find_relation cat name with
        | Some rel ->
          let schema = Relation.schema rel in
          let arity = Schema.arity schema in
          let memo = Array.init arity (fun _ -> Hashtbl.create 256) in
          Hashtbl.replace by_id id (name, schema, memo, ref rel)
        | None -> corrupt "relation id %d (%s) missing from DDL skeleton" id name)
      t.rel_ids;
    Hashtbl.reset t.tids;
    iter_heap_slots t (fun ~tid record ->
        let rel_id, sign, labels = decode_record record in
        match Hashtbl.find_opt by_id rel_id with
        | None -> corrupt "tuple %d references unknown relation id %d" tid rel_id
        | Some (name, schema, memo, rel) ->
          let arity = Schema.arity schema in
          if List.length labels <> arity then
            corrupt "tuple %d arity %d does not match %s/%d" tid (List.length labels) name arity;
          let coords = Array.make arity 0 in
          List.iteri
            (fun i label ->
              let node =
                match Hashtbl.find_opt memo.(i) label with
                | Some v -> v
                | None ->
                  let v =
                    try Hierarchy.find_exn (Schema.hierarchy schema i) label
                    with _ -> corrupt "tuple %d label %S unknown in hierarchy" tid label
                  in
                  Hashtbl.add memo.(i) label v;
                  v
              in
              coords.(i) <- node)
            labels;
          (try rel := Relation.add !rel (Item.make schema coords) sign
           with Types.Model_error msg -> corrupt "tuple %d: %s" tid msg);
          Hashtbl.replace (rel_tids t name) (labels_key labels) tid);
    Hashtbl.iter (fun _ (name, _, _, rel) ->
        ignore name;
        Catalog.replace_relation cat !rel)
      by_id;
    cat
  end

(* ---- relation apply (checkpoint delta) --------------------------------- *)

let tuple_labels schema tuple =
  List.init (Schema.arity schema) (fun i ->
      Hierarchy.node_label (Schema.hierarchy schema i) (Item.coord tuple.Relation.item i))

(* Write [rel]'s tuples into pages as a delta against [old] (the
   relation value as of the last checkpoint): unchanged tuples touch no
   page, so checkpoint cost tracks the mutation burst, not the relation
   size. *)
let apply_relation t ?old rel =
  let name = Relation.name rel in
  let rel_id = rel_id_of t name in
  let schema = Relation.schema rel in
  let del o tu = delete_tuple t ~rel:name ~rel_id (tuple_labels (Relation.schema o) tu) in
  let ins tu =
    ignore (insert_tuple t ~rel:name ~rel_id ~sign:tu.Relation.sign (tuple_labels schema tu))
  in
  match old with
  | None -> List.iter ins (Relation.tuples rel)
  | Some o ->
    (* Both tuple lists ascend by [Item.compare], so a merge walk finds
       the delta with one integer-array comparison per tuple; labels (the
       expensive part — per-coordinate name rendering) are only computed
       for tuples that actually changed. Keeps an incremental checkpoint's
       CPU cost near the delta, not the relation size. *)
    let rec walk olds news =
      match olds, news with
      | [], [] -> ()
      | ot :: os, [] ->
        del o ot;
        walk os []
      | [], nt :: ns ->
        ins nt;
        walk [] ns
      | ot :: os, nt :: ns ->
        let c = Item.compare ot.Relation.item nt.Relation.item in
        if c = 0 then begin
          if not (Types.sign_equal ot.Relation.sign nt.Relation.sign) then begin
            (* sign flip: the record stores the sign, so rewrite in place *)
            del o ot;
            ins nt
          end;
          walk os ns
        end
        else if c < 0 then begin
          del o ot;
          walk os news
        end
        else begin
          ins nt;
          walk olds ns
        end
    in
    walk (Relation.tuples o) (Relation.tuples rel)

let drop_relation t name =
  match List.assoc_opt name t.rel_ids with
  | None -> ()
  | Some rel_id ->
    (match Hashtbl.find_opt t.tids name with
    | None -> ()
    | Some tbl ->
      let keys = Hashtbl.fold (fun k _ acc -> k :: acc) tbl [] in
      List.iter (fun key -> delete_tuple t ~rel:name ~rel_id (split_key key)) keys);
    Hashtbl.remove t.tids name;
    t.rel_ids <- List.filter (fun (n, _) -> n <> name) t.rel_ids

let apply_catalog t cat =
  List.iter (fun rel -> apply_relation t rel) (Catalog.relations cat)

(* ---- integrity checks (fsck) ------------------------------------------- *)

type fault_kind = Checksum | Dangling_tid | Duplicate_tid | Btree_order | Freemap
type fault = { kind : fault_kind; detail : string }

let check t =
  let faults = ref [] in
  let fault kind fmt = Format.kasprintf (fun detail -> faults := { kind; detail } :: !faults) fmt in
  (* per-page seals *)
  for l = 0 to t.n_logical - 1 do
    if t.pt.(l) <> 0 then begin
      let b = read_logical t l in
      let stored = get_u32 b 12 in
      let copy = Bytes.copy b in
      set_u32 copy 12 0;
      let actual = Int32.to_int (Codec.crc32 (Bytes.to_string copy)) land 0xFFFFFFFF in
      if stored <> actual then
        fault Checksum "logical page %d: CRC stored %08x, computed %08x" l stored actual
      else if get_u32 b 8 <> l then
        fault Checksum "logical page %d: header claims logical id %d" l (get_u32 b 8)
    end
  done;
  (* B-tree structure *)
  let pages = bt_pages t in
  let bt_faults = Btree.check pages ~root:t.btree_root in
  List.iter (fun d -> fault Btree_order "%s" d) bt_faults;
  (* The cross-sweeps walk the tree and probe it per heap label; both
     would raise rather than report on nodes that do not decode, so they
     only run over a structurally sound tree. *)
  if bt_faults = [] then begin
  (* B-tree -> heap: every entry resolves to a live, matching tuple *)
  let seen = Hashtbl.create 1024 in
  Btree.iter pages ~root:t.btree_root (fun key tid ->
      let rel_id, attr, lab = parse_bt_key key in
      if Hashtbl.mem seen (rel_id, attr, tid) then
        fault Duplicate_tid "tid %d referenced twice for relation %d attribute %d" tid rel_id attr
      else Hashtbl.replace seen (rel_id, attr, tid) ();
      let l = tid_page tid and s = tid_slot tid in
      if l >= t.n_logical || t.pt.(l) = 0 then
        fault Dangling_tid "index entry %S -> tid %d: page %d unmapped" lab tid l
      else begin
        let b = read_logical t l in
        if Char.code (Bytes.get b 0) <> tag_heap then
          fault Dangling_tid "index entry %S -> tid %d: page %d is not a heap page" lab tid l
        else if s >= get_u16 b 2 || get_u16 b (slot_off s) = 0 then
          fault Dangling_tid "index entry %S -> tid %d: slot is a tombstone" lab tid
        else begin
          let off = get_u16 b (slot_off s) in
          let len = get_u16 b (slot_off s + 2) in
          match decode_record (Bytes.sub_string b off len) with
          | exception _ -> fault Dangling_tid "tid %d: record does not decode" tid
          | rec_rel, _, labels ->
            if rec_rel <> rel_id then
              fault Btree_order "tid %d: index says relation %d, record says %d" tid rel_id rec_rel
            else if attr >= List.length labels then
              fault Btree_order "tid %d: index attribute %d out of record arity" tid attr
            else begin
              let full = List.nth labels attr in
              let trunc =
                if String.length full > Btree.max_key - 6 then
                  String.sub full 0 (Btree.max_key - 6)
                else full
              in
              if not (String.equal trunc lab) then
                fault Btree_order "tid %d attribute %d: leaf key %S disagrees with heap label %S"
                  tid attr lab full
            end
        end
      end);
  (* heap -> B-tree and free-map accuracy *)
  for l = 0 to t.n_logical - 1 do
    if t.pt.(l) <> 0 then begin
      let b = read_logical t l in
      if Char.code (Bytes.get b 0) = tag_heap then begin
        let count = get_u16 b 2 in
        let live = ref 0 in
        for s = 0 to count - 1 do
          let off = get_u16 b (slot_off s) in
          if off <> 0 then begin
            incr live;
            let len = get_u16 b (slot_off s + 2) in
            match decode_record (Bytes.sub_string b off len) with
            | exception _ -> fault Checksum "page %d slot %d: record does not decode" l s
            | rel_id, _, labels ->
              let tid = tid_of ~page:l ~slot:s in
              List.iteri
                (fun attr label ->
                  let tids = Btree.lookup pages ~root:t.btree_root (bt_key ~rel_id ~attr label) in
                  if not (List.mem tid tids) then
                    fault Btree_order "tid %d attribute %d (%S) missing from the index" tid attr
                      label)
                labels
          end
        done;
        let free = computed_free b in
        match Hashtbl.find_opt t.free_space l with
        | None -> fault Freemap "heap page %d has no free-space map entry" l
        | Some (fm_free, fm_live) ->
          if fm_free <> free || fm_live <> !live then
            fault Freemap "heap page %d: map says free=%d live=%d, page has free=%d live=%d" l
              fm_free fm_live free !live
      end
    end
  done
  end;
  (* free-map entries must point at live heap pages *)
  Hashtbl.iter
    (fun l _ ->
      if l >= t.n_logical || t.pt.(l) = 0 then
        fault Freemap "free-space map entry for unmapped page %d" l
      else if Char.code (Bytes.get (read_logical t l) 0) <> tag_heap then
        fault Freemap "free-space map entry for non-heap page %d" l)
    t.free_space;
  List.rev !faults

(* ---- corruption and crash hooks for tests ------------------------------ *)

module Testing = struct
  let crash_before_meta = crash_before_meta

  (* In-place edits bypass shadowing on purpose: they simulate committed
     state rotting on disk. [restamp] keeps the CRC valid so each
     corruption isolates one finding. *)
  let edit ?(restamp = true) t l f =
    Pager.with_page t.pager (resolve t l) (fun b ->
        f b;
        if restamp then stamp_crc b);
    Pager.flush t.pager

  let corrupt_page t =
    edit ~restamp:false t t.btree_root (fun b ->
        Bytes.set b (header + 1) (Char.chr (Char.code (Bytes.get b (header + 1)) lxor 0xff)))

  let first_live_slot t =
    let found = ref None in
    (try
       iter_heap_slots t (fun ~tid _ ->
           found := Some tid;
           raise Exit)
     with Exit -> ());
    match !found with Some tid -> tid | None -> failwith "store has no live tuples"

  let kill_slot t =
    let tid = first_live_slot t in
    let heap_l = tid_page tid in
    let free = ref 0 and live = ref 0 in
    edit t heap_l (fun b ->
        set_u16 b (slot_off (tid_slot tid)) 0;
        set_u16 b 6 (get_u16 b 6 - 1);
        free := computed_free b;
        live := get_u16 b 6);
    (* keep the on-disk free-space map consistent so only the dangling
       index entry is reported *)
    let slot = Hashtbl.find t.fm_slot heap_l in
    let fm_l = List.nth t.freemap_pages (slot / fm_per_page) in
    edit t fm_l (fun b ->
        let off = header + (8 * (slot mod fm_per_page)) in
        set_u16 b (off + 4) !free;
        set_u16 b (off + 6) !live);
    tid

  let rec first_leaf t l =
    let b = read_logical t l in
    match Char.code (Bytes.get b 0) with
    | 3 -> l
    | 4 -> first_leaf t (get_u32 b header)
    | tag -> failwith (Printf.sprintf "unexpected page tag %d under btree root" tag)

  let swap_btree_keys t =
    let leaf = first_leaf t t.btree_root in
    edit t leaf (fun b ->
        let count = get_u16 b 2 in
        if count < 2 then failwith "first leaf has fewer than two entries";
        (* swap the first two entries' payloads wholesale *)
        let off1 = header in
        let len1 = 10 + get_u16 b off1 in
        let off2 = off1 + len1 in
        let len2 = 10 + get_u16 b off2 in
        let e1 = Bytes.sub b off1 len1 in
        let e2 = Bytes.sub b off2 len2 in
        Bytes.blit e2 0 b off1 len2;
        Bytes.blit e1 0 b (off1 + len2) len1)

  let dup_btree_ref t =
    let tid = first_live_slot t in
    let b = read_logical t (tid_page tid) in
    let off = get_u16 b (slot_off (tid_slot tid)) in
    let len = get_u16 b (slot_off (tid_slot tid) + 2) in
    let rel_id, _, labels = decode_record (Bytes.sub_string b off len) in
    let label = List.hd labels in
    t.btree_root <-
      Btree.insert (bt_pages t) ~root:t.btree_root
        ~key:(bt_key ~rel_id ~attr:0 (label ^ "~dup"))
        ~tid;
    (* persist the inconsistency through a normal commit *)
    ignore (commit t ~base_lsn:t.base_lsn ())

  let skew_freemap t =
    let heap_l =
      let found = ref None in
      (try
         Hashtbl.iter (fun l _ -> found := Some l; raise Exit) t.free_space
       with Exit -> ());
      match !found with Some l -> l | None -> failwith "store has no heap pages"
    in
    let slot = Hashtbl.find t.fm_slot heap_l in
    let fm_l = List.nth t.freemap_pages (slot / fm_per_page) in
    edit t fm_l (fun b ->
        let off = header + (8 * (slot mod fm_per_page)) in
        set_u16 b (off + 4) (get_u16 b (off + 4) + 99))
end
