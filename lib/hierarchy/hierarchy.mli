(** Domain hierarchies (paper, Section 2.1).

    A hierarchy is a rooted DAG over a domain: the root is the domain
    itself, internal nodes are classes, and leaves are instances (atomic
    elements, treated as singleton classes per the paper's footnote 3).
    [isa] edges run from the more general class to the more specific one;
    membership is reachability over [isa] edges. {e Preference} edges
    (paper, Appendix) additionally bias binding strength without implying
    set inclusion.

    The hierarchy enforces the {e type-irredundancy constraint} (paper,
    §3.1): no edge insertion may create a cycle. Redundant [isa] edges
    (edges implied by other paths) are legal but change off-path preemption
    results, so {!validate} reports them and {!reduce} removes them.

    Mutation invalidates the internal reachability index; the index is
    rebuilt lazily on the next subsumption query, so interleaving edits and
    queries is correct but repeated alternation is slow. *)

type t

type node = int
(** Nodes are dense non-negative integers, stable across mutations. *)

exception Error of string
(** Raised on malformed operations (duplicate names, cycles, unknown
    nodes, children added under instances). *)

val create : string -> t
(** [create domain] is a hierarchy whose root class is named [domain]. *)

val copy : t -> t
(** A deep, {e unfrozen} copy. Node ids are preserved, so items built
    against the original remain valid against the copy — the basis of
    the catalog's copy-on-write DDL path. *)

val freeze : t -> unit
(** Seals the hierarchy for lock-free concurrent reads: prebuilds both
    closure indexes, fully populates the ancestor/descendant memos, and
    makes every mutator raise {!Error}. After [freeze], no read path
    writes any internal state, so the value may be shared across OCaml
    domains (the snapshot-isolation contract in [docs/CONCURRENCY.md]).
    Idempotent. To change a frozen hierarchy, {!copy} it (the copy is
    unfrozen), mutate the copy, and republish. *)

val frozen : t -> bool

val domain : t -> Hr_util.Symbol.t
(** The root class's name. *)

val root : t -> node

val add_class : t -> ?parents:string list -> string -> node
(** [add_class h name] adds class [name] under the given [parents]
    (default: directly under the root). Raises {!Error} if the name is
    taken or a parent is unknown or an instance. *)

val add_instance : t -> ?parents:string list -> string -> node
(** Like {!add_class} but the node is an instance: a leaf that can never
    be given children. *)

val add_isa : t -> sub:string -> super:string -> unit
(** Adds an [isa] edge from [super] to [sub]. Raises {!Error} if it would
    create a cycle or put a child under an instance. Redundant edges are
    accepted (see {!validate}). *)

val add_preference : t -> weaker:string -> stronger:string -> unit
(** Adds a preference edge from [weaker] to [stronger]: tuples asserted on
    [stronger] bind more strongly than tuples on [weaker] wherever both
    apply, without [stronger] becoming a subset of [weaker]. *)

val find : t -> string -> node option
val find_exn : t -> string -> node
val mem : t -> string -> bool

val node_name : t -> node -> Hr_util.Symbol.t
val node_label : t -> node -> string

val is_instance : t -> node -> bool
val is_class : t -> node -> bool

val node_count : t -> int
val nodes : t -> node list
val instances : t -> node list
(** All instance nodes, in id order. *)

val classes : t -> node list
(** All class nodes including the root, in id order. *)

val parents : t -> node -> node list
(** Immediate [isa] predecessors. *)

val children : t -> node -> node list
(** Immediate [isa] successors. *)

val preference_edges : t -> (node * node) list
(** All preference edges as [(weaker, stronger)] pairs, in insertion
    order. *)

val subsumes : t -> node -> node -> bool
(** [subsumes h a b] iff [b] is reachable from [a] over [isa] edges,
    reflexively: every member of [b] is a member of [a]. *)

val strictly_subsumes : t -> node -> node -> bool

val binds_below : t -> node -> node -> bool
(** Reachability over [isa] and preference edges together — the order used
    for binding strength (paper, Appendix). [binds_below h a b] iff [b]
    binds at least as strongly as [a] wherever both apply. *)

val leaves_under : t -> node -> node list
(** The atomic extension of a node: all instance leaves reachable from it
    (the node itself if it is an instance). Classes with no instances have
    an empty extension. *)

val descendants : t -> node -> node list
(** All [isa]-reachable nodes, inclusive. *)

val ancestors : t -> node -> node list

val intersects : t -> node -> node -> bool
(** Optimistic intersection test (paper, §3.1): [true] iff an explicit
    common descendant — class or instance — exists. *)

val maximal_common_descendants : t -> node -> node -> node list
(** The most general common descendants of two nodes: the per-coordinate
    building block of the paper's minimal conflict resolution set. Empty
    iff the nodes do not {!intersects}. If [subsumes a b], this is [[b]]. *)

type issue =
  | Redundant_isa_edge of node * node
      (** An [isa] edge implied by another path; breaks off-path preemption
          (paper, Appendix, footnote 7). *)

val validate : t -> issue list
(** Structural problems that do not prevent operation but change semantics.
    Cycles are impossible by construction. *)

val reduce : t -> unit
(** Removes all redundant [isa] edges (restores the transitive
    reduction). *)

val rename_node : t -> old_name:string -> new_name:string -> unit
(** Renames a class or instance. Raises {!Error} if [old_name] is unknown
    or [new_name] is taken. Node ids — and therefore all existing items
    in relations over this hierarchy — are unaffected. *)

val eliminate : t -> on_path:bool -> node -> unit
(** Node elimination (paper, §2.1) applied to the hierarchy itself —
    removes a class and relinks around it. Instances of the class are kept,
    relinked to its parents. *)

val pp : Format.formatter -> t -> unit
(** Indented tree rendering (nodes with several parents are printed under
    each, marked with [*]). *)

val to_dot : t -> string
