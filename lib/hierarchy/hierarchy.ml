module Symbol = Hr_util.Symbol
module Dag = Hr_graph.Dag

type node = int

(* Closure-index hits vs builds expose the cost of [invalidate]:
   a schema change after heavy querying shows up as an extra build. *)
let m_subsumption = Hr_obs.Metrics.counter "hierarchy.subsumption_checks"
let m_binding = Hr_obs.Metrics.counter "hierarchy.binding_checks"
let m_index_builds = Hr_obs.Metrics.counter "hierarchy.index_builds"
let m_index_hits = Hr_obs.Metrics.counter "hierarchy.index_hits"
let m_mcd = Hr_obs.Metrics.counter "hierarchy.mcd_calls"

exception Error of string

let error fmt = Format.kasprintf (fun s -> raise (Error s)) fmt

type t = {
  graph : Dag.t;
  by_name : node Symbol.Tbl.t;
  mutable names : Symbol.t array; (* indexed by node id *)
  mutable instance : bool array; (* indexed by node id *)
  root : node;
  mutable isa_index : Dag.Reach.t option; (* descendants over isa edges *)
  mutable bind_index : Dag.Reach.t option; (* descendants over isa + preference *)
  (* Memoized [ancestors] results. The binding index probes ancestors of
     every coordinate of every probed item; uncached, each probe pays a
     full DFS whose cost tracks the hierarchy's shape (the PR 2 bench's
     "100 tuples slower than 400" anomaly was exactly this). Cleared
     with the closure indexes on every mutation. *)
  anc_cache : (node, node list) Hashtbl.t;
  (* Same memo for [descendants]: maximal-common-descendant computation
     (the integrity check's inner loop) probes it repeatedly for the
     same classes. *)
  desc_cache : (node, node list) Hashtbl.t;
  (* Pairwise memo for [maximal_common_descendants]: the integrity sweep
     asks about every opposite-sign tuple pair, and coordinates draw from
     far fewer distinct classes than there are pairs. *)
  mcd_cache : (node * node, node list) Hashtbl.t;
  (* A frozen hierarchy is immutable and safe to read from any number of
     domains concurrently: the closure indexes are prebuilt, the
     ancestor/descendant memos are fully populated (so lookups never
     write), and every mutator refuses. The writer mutates via
     copy-on-write ({!Catalog.update_hierarchy}): [copy] always yields
     an unfrozen, privately owned value. *)
  mutable frozen : bool;
}

let invalidate h =
  h.isa_index <- None;
  h.bind_index <- None;
  Hashtbl.reset h.anc_cache;
  Hashtbl.reset h.desc_cache;
  Hashtbl.reset h.mcd_cache

let frozen h = h.frozen

let check_mutable h =
  if h.frozen then
    error "hierarchy %s is frozen (a published snapshot shares it); mutate through the catalog's copy-on-write path"
      (Symbol.name h.names.(h.root))

let create domain_name =
  let graph = Dag.create () in
  let root = Dag.add_node graph in
  let sym = Symbol.intern domain_name in
  let by_name = Symbol.Tbl.create 64 in
  Symbol.Tbl.add by_name sym root;
  {
    graph;
    by_name;
    names = [| sym |];
    instance = [| false |];
    root;
    isa_index = None;
    bind_index = None;
    anc_cache = Hashtbl.create 64;
    desc_cache = Hashtbl.create 64;
    mcd_cache = Hashtbl.create 64;
    frozen = false;
  }

(* Node ids survive the copy ([Dag.copy] preserves them), so items in
   relations over the original remain valid over the copy. The copy is
   always unfrozen: it is a new private value the caller may mutate. *)
let copy h =
  {
    graph = Dag.copy h.graph;
    by_name = Symbol.Tbl.copy h.by_name;
    names = Array.copy h.names;
    instance = Array.copy h.instance;
    root = h.root;
    isa_index = h.isa_index;
    bind_index = h.bind_index;
    anc_cache = Hashtbl.copy h.anc_cache;
    desc_cache = Hashtbl.copy h.desc_cache;
    mcd_cache = Hashtbl.copy h.mcd_cache;
    frozen = false;
  }

let domain h = h.names.(h.root)
let root h = h.root

let find h name = Symbol.Tbl.find_opt h.by_name (Symbol.intern name)

let find_exn h name =
  match find h name with
  | Some v -> v
  | None -> error "unknown class or instance %S in domain %a" name Symbol.pp (domain h)

let mem h name = Option.is_some (find h name)

let check_node h v =
  if not (Dag.is_alive h.graph v) then error "node %d is not part of the hierarchy" v

let node_name h v =
  check_node h v;
  h.names.(v)

let node_label h v = Symbol.name (node_name h v)
let is_instance h v = check_node h v; h.instance.(v)
let is_class h v = not (is_instance h v)

let grow_meta h v =
  let cap = Array.length h.names in
  if v >= cap then begin
    let cap' = max 8 (2 * cap) in
    let names = Array.make cap' h.names.(h.root) in
    let instance = Array.make cap' false in
    Array.blit h.names 0 names 0 cap;
    Array.blit h.instance 0 instance 0 cap;
    h.names <- names;
    h.instance <- instance
  end

let add_named h ~instance ~parents name =
  check_mutable h;
  let sym = Symbol.intern name in
  if Symbol.Tbl.mem h.by_name sym then error "name %S already defined" name;
  let parent_nodes =
    match parents with
    | [] -> [ h.root ]
    | ps -> List.map (find_exn h) ps
  in
  List.iter
    (fun p ->
      if h.instance.(p) then
        error "cannot place %S under instance %S" name (node_label h p))
    parent_nodes;
  let v = Dag.add_node h.graph in
  grow_meta h v;
  h.names.(v) <- sym;
  h.instance.(v) <- instance;
  Symbol.Tbl.add h.by_name sym v;
  List.iter (fun p -> Dag.add_edge h.graph p v) parent_nodes;
  invalidate h;
  v

let add_class h ?(parents = []) name = add_named h ~instance:false ~parents name
let add_instance h ?(parents = []) name = add_named h ~instance:true ~parents name

let add_isa h ~sub ~super =
  check_mutable h;
  let sub_node = find_exn h sub and super_node = find_exn h super in
  if h.instance.(super_node) then
    error "cannot place %S under instance %S" sub super;
  if sub_node = super_node then error "isa self-loop on %S" sub;
  if Dag.reachable h.graph sub_node super_node then
    error "isa edge %S -> %S would create a cycle" super sub;
  Dag.add_edge h.graph super_node sub_node;
  invalidate h

let add_preference h ~weaker ~stronger =
  check_mutable h;
  let w = find_exn h weaker and s = find_exn h stronger in
  if w = s then error "preference self-loop on %S" weaker;
  if Dag.reachable h.graph s w then
    error "preference edge %S -> %S would create a cycle" weaker stronger;
  Dag.add_edge h.graph ~kind:Dag.Preference w s;
  invalidate h

let node_count h = Dag.live_count h.graph
let nodes h = Dag.live_nodes h.graph
let instances h = List.filter (fun v -> h.instance.(v)) (nodes h)
let classes h = List.filter (fun v -> not h.instance.(v)) (nodes h)

let isa_kind = function Dag.Isa -> true | Dag.Preference -> false

let parents h v =
  check_node h v;
  Dag.preds_ordered h.graph ~kinds:isa_kind v

let children h v =
  check_node h v;
  Dag.succs_ordered h.graph ~kinds:isa_kind v

let pref_kind = function Dag.Isa -> false | Dag.Preference -> true

let preference_edges h =
  List.concat_map
    (fun w -> List.map (fun s -> (w, s)) (Dag.succs_ordered h.graph ~kinds:pref_kind w))
    (nodes h)

let isa_index h =
  match h.isa_index with
  | Some idx ->
    Hr_obs.Metrics.incr m_index_hits;
    idx
  | None ->
    Hr_obs.Metrics.incr m_index_builds;
    let idx = Dag.Reach.create ~kinds:isa_kind h.graph in
    h.isa_index <- Some idx;
    idx

let bind_index h =
  match h.bind_index with
  | Some idx ->
    Hr_obs.Metrics.incr m_index_hits;
    idx
  | None ->
    Hr_obs.Metrics.incr m_index_builds;
    let idx = Dag.Reach.create h.graph in
    h.bind_index <- Some idx;
    idx

let subsumes h a b =
  Hr_obs.Metrics.incr m_subsumption;
  check_node h a;
  check_node h b;
  Dag.Reach.mem (isa_index h) a b

let strictly_subsumes h a b = a <> b && subsumes h a b

let binds_below h a b =
  Hr_obs.Metrics.incr m_binding;
  check_node h a;
  check_node h b;
  Dag.Reach.mem (bind_index h) a b

(* On a frozen hierarchy the memo tables are fully populated (every live
   node was forced by [freeze]) and never written again, so concurrent
   lookups from reader domains are safe. A miss can only happen
   unfrozen; writing to the cache then is fine because an unfrozen
   hierarchy is owned by a single domain (the writer). *)
let descendants h v =
  check_node h v;
  match Hashtbl.find_opt h.desc_cache v with
  | Some l -> l
  | None ->
    let l = Dag.descendants h.graph ~kinds:isa_kind v in
    if not h.frozen then Hashtbl.add h.desc_cache v l;
    l

let ancestors h v =
  check_node h v;
  match Hashtbl.find_opt h.anc_cache v with
  | Some l -> l
  | None ->
    let l = Dag.ancestors h.graph ~kinds:isa_kind v in
    if not h.frozen then Hashtbl.add h.anc_cache v l;
    l

let leaves_under h v = List.filter (fun w -> h.instance.(w)) (descendants h v)

let common_descendants h a b =
  let da = descendants h a in
  let idx = isa_index h in
  List.filter (fun w -> Dag.Reach.mem idx b w) da

let intersects h a b = common_descendants h a b <> []

(* Descendant sets are down-closed, so their intersection is down-closed:
   a common descendant has a strict ancestor in the set iff one of its
   immediate [isa] parents is in the set. *)
let maximal_common_descendants h a b =
  Hr_obs.Metrics.incr m_mcd;
  if subsumes h a b then [ b ]
  else if subsumes h b a then [ a ]
  else
    (* Symmetric, so normalize the key. *)
    let key = if a <= b then (a, b) else (b, a) in
    match Hashtbl.find_opt h.mcd_cache key with
    | Some l -> l
    | None ->
      let common = common_descendants h a b in
      let in_common = Hashtbl.create 16 in
      List.iter (fun w -> Hashtbl.replace in_common w ()) common;
      let l =
        List.filter
          (fun w -> not (List.exists (Hashtbl.mem in_common) (parents h w)))
          common
      in
      (* The pairwise memo stays lazy (quadratic to precompute), so a
         frozen hierarchy recomputes misses instead of caching: the
         write-path integrity sweeps that hammer MCD always run on the
         writer's unfrozen copies, where the memo still applies. *)
      if not h.frozen then Hashtbl.add h.mcd_cache key l;
      l

(* Make every read path pure: build both closure indexes and force the
   ancestor/descendant memo for every live node, then seal the value.
   After this, [subsumes]/[binds_below] probe immutable bitsets,
   [ancestors]/[descendants]/[leaves_under] hit the fully populated
   memos, and [maximal_common_descendants] recomputes misses without
   caching — no read ever writes, so any number of domains may query a
   frozen hierarchy while holding no lock. O(V·E) once per publish of a
   mutated hierarchy; untouched hierarchies stay frozen across
   publishes and pay nothing. *)
let freeze h =
  if not h.frozen then begin
    ignore (isa_index h);
    ignore (bind_index h);
    List.iter
      (fun v ->
        ignore (descendants h v);
        ignore (ancestors h v))
      (nodes h);
    h.frozen <- true
  end

type issue = Redundant_isa_edge of node * node

let validate h =
  List.map (fun (u, v) -> Redundant_isa_edge (u, v)) (Dag.redundant_edges h.graph)

let reduce h =
  check_mutable h;
  Dag.transitive_reduction h.graph;
  invalidate h

let rename_node h ~old_name ~new_name =
  check_mutable h;
  let v = find_exn h old_name in
  let new_sym = Symbol.intern new_name in
  if Symbol.Tbl.mem h.by_name new_sym then error "name %S already defined" new_name;
  Symbol.Tbl.remove h.by_name h.names.(v);
  Symbol.Tbl.add h.by_name new_sym v;
  h.names.(v) <- new_sym

let eliminate h ~on_path v =
  check_mutable h;
  check_node h v;
  if v = h.root then error "cannot eliminate the domain root";
  if h.instance.(v) then error "cannot eliminate instance %S" (node_label h v);
  Symbol.Tbl.remove h.by_name h.names.(v);
  Dag.eliminate_node h.graph ~on_path v;
  invalidate h

let pp ppf h =
  let seen = Hashtbl.create 64 in
  let rec walk depth v =
    let expanded = Hashtbl.mem seen v in
    Format.fprintf ppf "%s%s%s%s@."
      (String.make (2 * depth) ' ')
      (node_label h v)
      (if h.instance.(v) then " (instance)" else "")
      (if expanded then " *" else "");
    if not expanded then begin
      Hashtbl.add seen v ();
      List.iter (walk (depth + 1)) (children h v)
    end
  in
  walk 0 h.root

let to_dot h = Dag.to_dot ~label:(node_label h) h.graph
