type edge_kind = Isa | Preference

(* Observability: reachability work is the engine's inner loop, so the
   counters distinguish on-demand DFS walks from closure-index probes
   (see docs/OBSERVABILITY.md). *)
let m_reachable = Hr_obs.Metrics.counter "graph.dag.reachable_calls"
let m_closure = Hr_obs.Metrics.counter "graph.dag.closure_walks"
let m_reach_builds = Hr_obs.Metrics.counter "graph.reach.builds"
let m_reach_queries = Hr_obs.Metrics.counter "graph.reach.queries"

let kind_equal a b =
  match a, b with
  | Isa, Isa | Preference, Preference -> true
  | Isa, Preference | Preference, Isa -> false

type t = {
  mutable succ : (int * edge_kind) list array;
  mutable pred : (int * edge_kind) list array;
  mutable alive : bool array;
  mutable n : int; (* number of allocated ids *)
}

let create () = { succ = [||]; pred = [||]; alive = [||]; n = 0 }

let copy g =
  { succ = Array.copy g.succ; pred = Array.copy g.pred; alive = Array.copy g.alive; n = g.n }

let grow g =
  let cap = Array.length g.alive in
  if g.n >= cap then begin
    let cap' = max 8 (2 * cap) in
    let succ = Array.make cap' [] in
    let pred = Array.make cap' [] in
    let alive = Array.make cap' false in
    Array.blit g.succ 0 succ 0 cap;
    Array.blit g.pred 0 pred 0 cap;
    Array.blit g.alive 0 alive 0 cap;
    g.succ <- succ;
    g.pred <- pred;
    g.alive <- alive
  end

let add_node g =
  grow g;
  let id = g.n in
  g.n <- g.n + 1;
  g.alive.(id) <- true;
  g.succ.(id) <- [];
  g.pred.(id) <- [];
  id

let capacity g = g.n
let is_alive g v = v >= 0 && v < g.n && g.alive.(v)

let live_nodes g =
  let rec loop i acc = if i < 0 then acc else loop (i - 1) (if g.alive.(i) then i :: acc else acc) in
  loop (g.n - 1) []

let live_count g =
  let c = ref 0 in
  for i = 0 to g.n - 1 do
    if g.alive.(i) then incr c
  done;
  !c

let check_endpoint g v =
  if not (is_alive g v) then invalid_arg "Dag: dead or unknown node"

let mem_edge g ?(kind = Isa) u v =
  is_alive g u && is_alive g v
  && List.exists (fun (w, k) -> w = v && kind_equal k kind) g.succ.(u)

let add_edge g ?(kind = Isa) u v =
  check_endpoint g u;
  check_endpoint g v;
  if u = v then invalid_arg "Dag.add_edge: self loop";
  if not (mem_edge g ~kind u v) then begin
    g.succ.(u) <- (v, kind) :: g.succ.(u);
    g.pred.(v) <- (u, kind) :: g.pred.(v)
  end

let remove_edge g ?(kind = Isa) u v =
  if is_alive g u && is_alive g v then begin
    g.succ.(u) <- List.filter (fun (w, k) -> not (w = v && kind_equal k kind)) g.succ.(u);
    g.pred.(v) <- List.filter (fun (w, k) -> not (w = u && kind_equal k kind)) g.pred.(v)
  end

let all_kinds (_ : edge_kind) = true

let neighbors adj g kinds v =
  check_endpoint g v;
  List.filter_map
    (fun (w, k) -> if kinds k && g.alive.(w) then Some w else None)
    adj.(v)
  |> List.sort_uniq Int.compare

let succs g ?(kinds = all_kinds) v = neighbors g.succ g kinds v
let preds g ?(kinds = all_kinds) v = neighbors g.pred g kinds v

let neighbors_ordered adj g kinds v =
  check_endpoint g v;
  (* adjacency lists are built by prepending; reversing restores edge
     insertion order, with duplicates (same target, other kind) removed *)
  let rec dedup seen = function
    | [] -> []
    | (w, k) :: rest ->
      if kinds k && g.alive.(w) && not (List.mem w seen) then w :: dedup (w :: seen) rest
      else dedup seen rest
  in
  dedup [] (List.rev adj.(v))

let succs_ordered g ?(kinds = all_kinds) v = neighbors_ordered g.succ g kinds v
let preds_ordered g ?(kinds = all_kinds) v = neighbors_ordered g.pred g kinds v

let remove_node g v =
  check_endpoint g v;
  List.iter
    (fun (w, _) ->
      if g.alive.(w) then g.pred.(w) <- List.filter (fun (u, _) -> u <> v) g.pred.(w))
    g.succ.(v);
  List.iter
    (fun (w, _) ->
      if g.alive.(w) then g.succ.(w) <- List.filter (fun (u, _) -> u <> v) g.succ.(w))
    g.pred.(v);
  g.succ.(v) <- [];
  g.pred.(v) <- [];
  g.alive.(v) <- false

let reachable g ?(kinds = all_kinds) u v =
  Hr_obs.Metrics.incr m_reachable;
  check_endpoint g u;
  check_endpoint g v;
  if u = v then true
  else begin
    let seen = Array.make g.n false in
    let rec dfs x =
      x = v
      || (not seen.(x))
         && begin
              seen.(x) <- true;
              List.exists (fun (w, k) -> kinds k && g.alive.(w) && dfs w) g.succ.(x)
            end
    in
    seen.(u) <- true;
    List.exists (fun (w, k) -> kinds k && g.alive.(w) && dfs w) g.succ.(u)
  end

let closure adj g kinds v =
  Hr_obs.Metrics.incr m_closure;
  check_endpoint g v;
  let seen = Array.make g.n false in
  let rec dfs x acc =
    if seen.(x) then acc
    else begin
      seen.(x) <- true;
      List.fold_left
        (fun acc (w, k) -> if kinds k && g.alive.(w) then dfs w acc else acc)
        (x :: acc) adj.(x)
    end
  in
  List.sort Int.compare (dfs v [])

let descendants g ?(kinds = all_kinds) v = closure g.succ g kinds v
let ancestors g ?(kinds = all_kinds) v = closure g.pred g kinds v

let isa_only = function Isa -> true | Preference -> false

let roots g =
  List.filter (fun v -> preds g ~kinds:isa_only v = []) (live_nodes g)

let leaves g =
  List.filter (fun v -> succs g ~kinds:isa_only v = []) (live_nodes g)

(* Kahn's algorithm over live nodes, all edge kinds. Returns ancestors
   first. *)
let topo_sort_opt g =
  let indeg = Array.make (max 1 g.n) 0 in
  let lives = live_nodes g in
  List.iter (fun v -> indeg.(v) <- List.length (preds g v)) lives;
  let queue = Queue.create () in
  List.iter (fun v -> if indeg.(v) = 0 then Queue.add v queue) lives;
  let order = ref [] in
  let count = ref 0 in
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    order := v :: !order;
    incr count;
    List.iter
      (fun w ->
        indeg.(w) <- indeg.(w) - 1;
        if indeg.(w) = 0 then Queue.add w queue)
      (succs g v)
  done;
  if !count = List.length lives then Some (List.rev !order) else None

let has_cycle g = Option.is_none (topo_sort_opt g)

let topo_sort g =
  match topo_sort_opt g with
  | Some order -> order
  | None -> invalid_arg "Dag.topo_sort: graph has a cycle"

(* [u -> v] is redundant if some other path u ->* v of live edges exists.
   We test by searching from u's other successors. *)
let edge_redundant g u v =
  List.exists
    (fun (w, _) -> w <> v && g.alive.(w) && reachable g w v)
    g.succ.(u)

let redundant_edges g =
  List.concat_map
    (fun u ->
      List.filter_map
        (fun (v, k) ->
          match k with
          | Preference -> None
          | Isa -> if g.alive.(v) && edge_redundant g u v then Some (u, v) else None)
        g.succ.(u))
    (live_nodes g)

let transitive_reduction g =
  (* Removing one redundant edge can never make another redundant edge
     necessary (in a DAG, a redundant edge is witnessed by a path that uses
     no redundant edge of maximal length), so a single sweep suffices as
     long as each removal is checked against the current graph. *)
  List.iter
    (fun u ->
      List.iter
        (fun (v, k) ->
          match k with
          | Preference -> ()
          | Isa -> if g.alive.(v) && edge_redundant g u v then remove_edge g u v)
        g.succ.(u))
    (live_nodes g)

let eliminate_node g ~on_path v =
  check_endpoint g v;
  let order = topo_sort g in
  let position = Array.make (max 1 g.n) 0 in
  List.iteri (fun i x -> position.(x) <- i) order;
  let ps = preds g v in
  let ks = succs g v in
  remove_node g v;
  let ps = List.sort (fun a b -> Int.compare position.(b) position.(a)) ps in
  let ks = List.sort (fun a b -> Int.compare position.(a) position.(b)) ks in
  List.iter
    (fun j ->
      List.iter
        (fun k ->
          if on_path || not (reachable g j k) then add_edge g j k)
        ks)
    ps

let to_dot ?(label = string_of_int) g =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "digraph g {\n";
  List.iter
    (fun v -> Buffer.add_string buf (Printf.sprintf "  n%d [label=%S];\n" v (label v)))
    (live_nodes g);
  List.iter
    (fun u ->
      List.iter
        (fun (v, k) ->
          if g.alive.(v) then
            let style = match k with Isa -> "" | Preference -> " [style=dashed]" in
            Buffer.add_string buf (Printf.sprintf "  n%d -> n%d%s;\n" u v style))
        g.succ.(u))
    (live_nodes g);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

module Reach = struct
  type dag = t

  type t = { row_bytes : int; bits : Bytes.t; n : int }
  (* One bitset row of descendants per node: row [u] occupies [row_bytes]
     bytes starting at byte [u * row_bytes]; bit [v] of the row is byte
     [v / 8], mask [1 lsl (v mod 8)]. *)

  let create ?(kinds = all_kinds) (g : dag) =
    Hr_obs.Metrics.incr m_reach_builds;
    let n = capacity g in
    let row_bytes = (n + 7) / 8 in
    let bits = Bytes.make (max 1 (n * row_bytes)) '\000' in
    let set_self u =
      let j = (u * row_bytes) + (u lsr 3) in
      Bytes.set bits j (Char.chr (Char.code (Bytes.get bits j) lor (1 lsl (u land 7))))
    in
    let union_row ~into:u ~from:v =
      for w = 0 to row_bytes - 1 do
        let cur = Char.code (Bytes.get bits ((u * row_bytes) + w)) in
        let other = Char.code (Bytes.get bits ((v * row_bytes) + w)) in
        Bytes.set bits ((u * row_bytes) + w) (Char.chr (cur lor other))
      done
    in
    (* Reverse topological order: a node's successors' rows are complete
       before being unioned into its own row. *)
    List.iter
      (fun u ->
        set_self u;
        List.iter (fun v -> union_row ~into:u ~from:v) (succs g ~kinds u))
      (List.rev (topo_sort g));
    { row_bytes; bits; n }

  let mem t u v =
    Hr_obs.Metrics.incr m_reach_queries;
    u >= 0 && v >= 0 && u < t.n && v < t.n
    && Char.code (Bytes.get t.bits ((u * t.row_bytes) + (v lsr 3))) land (1 lsl (v land 7)) <> 0
end
