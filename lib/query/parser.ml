open Lexer

exception Parse_error of { msg : string; loc : Loc.t }

(* A tiny mutable token cursor over span-stamped tokens. [last] is the
   span of the most recently consumed token, so a production's span is
   the merge of its first token's span with [last] when it finishes. *)
type cursor = { mutable toks : (token * Loc.t) list; mutable last : Loc.t }

let fail c fmt =
  let loc = match c.toks with (_, l) :: _ -> l | [] -> c.last in
  Format.kasprintf
    (fun s ->
      raise
        (Parse_error
           { msg = Format.asprintf "%s at %a" s Loc.pp_prose loc; loc }))
    fmt

let peek c = match c.toks with [] -> None | (t, _) :: _ -> Some t

(* The span the next production will start at. *)
let next_loc c = match c.toks with (_, l) :: _ -> l | [] -> c.last

let advance c =
  match c.toks with
  | [] -> fail c "unexpected end of input"
  | (t, l) :: rest ->
    c.toks <- rest;
    c.last <- l;
    t

let expect c tok =
  let got = advance c in
  if got <> tok then fail c "expected %a but found %a" pp_token tok pp_token got

let expect_kw c kw =
  match advance c with
  | Kw k when k = kw -> ()
  | got -> fail c "expected keyword %s but found %a" kw pp_token got

let ident c =
  match advance c with
  | Ident s -> s
  | got -> fail c "expected an identifier but found %a" pp_token got

let comma_sep c parse_one =
  let rec rest acc =
    match peek c with
    | Some Comma ->
      ignore (advance c);
      rest (parse_one c :: acc)
    | _ -> List.rev acc
  in
  rest [ parse_one c ]

let value c =
  match peek c with
  | Some (Kw "ALL") ->
    ignore (advance c);
    Ast.All (ident c)
  | _ -> Ast.Atom (ident c)

let paren_values c =
  expect c Lparen;
  let vs = comma_sep c value in
  expect c Rparen;
  vs

let signed_row c =
  expect c Lparen;
  let sign =
    match advance c with
    | Plus -> Hierel.Types.Pos
    | Minus -> Hierel.Types.Neg
    | got -> fail c "expected '+' or '-' but found %a" pp_token got
  in
  let values = comma_sep c value in
  expect c Rparen;
  { Ast.sign; values }

let attr_list c =
  expect c Lparen;
  let one c =
    let name = ident c in
    expect c Colon;
    let domain = ident c in
    (name, domain)
  in
  let attrs = comma_sep c one in
  expect c Rparen;
  attrs

let semantics_of_kw = function
  | "OFF-PATH" -> Some Hierel.Types.Off_path
  | "ON-PATH" -> Some Hierel.Types.On_path
  | "NO-PREEMPTION" -> Some Hierel.Types.No_preemption
  | _ -> None

(* Builds a located node spanning from [start] to the last consumed
   token. *)
let mk c start node = { Ast.expr = node; eloc = Loc.merge start c.last }

let rec expr c =
  let start = next_loc c in
  let lhs = term c in
  let rec ops lhs =
    match peek c with
    | Some (Kw "UNION") ->
      ignore (advance c);
      ops (mk c start (Ast.Union (lhs, term c)))
    | Some (Kw "INTERSECT") ->
      ignore (advance c);
      ops (mk c start (Ast.Intersect (lhs, term c)))
    | Some (Kw "EXCEPT") ->
      ignore (advance c);
      ops (mk c start (Ast.Except (lhs, term c)))
    | Some (Kw "JOIN") ->
      ignore (advance c);
      ops (mk c start (Ast.Join (lhs, term c)))
    | _ -> lhs
  in
  ops lhs

and term c =
  let start = next_loc c in
  match peek c with
  | Some Lparen ->
    ignore (advance c);
    let e = expr c in
    expect c Rparen;
    e
  | Some (Kw "SELECT") ->
    ignore (advance c);
    let e = term c in
    expect_kw c "WHERE";
    let rec conds e =
      let attr = ident c in
      expect c Equals;
      let v = value c in
      let e = mk c start (Ast.Select (e, attr, v)) in
      match peek c with
      | Some (Kw "AND") ->
        ignore (advance c);
        conds e
      | _ -> e
    in
    conds e
  | Some (Kw "PROJECT") ->
    ignore (advance c);
    let e = term c in
    expect_kw c "ON";
    expect c Lparen;
    let attrs = comma_sep c ident in
    expect c Rparen;
    mk c start (Ast.Project (e, attrs))
  | Some (Kw "RENAME") ->
    ignore (advance c);
    let e = term c in
    let old_name = ident c in
    expect_kw c "TO";
    let new_name = ident c in
    mk c start (Ast.Rename (e, old_name, new_name))
  | Some (Kw "CONSOLIDATED") ->
    ignore (advance c);
    mk c start (Ast.Consolidated (term c))
  | Some (Kw "EXPLICATED") ->
    ignore (advance c);
    let e = term c in
    (match peek c with
    | Some (Kw "ON") ->
      ignore (advance c);
      expect c Lparen;
      let attrs = comma_sep c ident in
      expect c Rparen;
      mk c start (Ast.Explicated (e, Some attrs))
    | _ -> mk c start (Ast.Explicated (e, None)))
  | Some (Ident _) -> mk c start (Ast.Rel (ident c))
  | Some got -> fail c "expected a relation expression but found %a" pp_token got
  | None -> fail c "expected a relation expression but found end of input"

let create_stmt c =
  match advance c with
  | Kw "DOMAIN" -> Ast.Create_domain (ident c)
  | Kw "CLASS" ->
    let name = ident c in
    let parents =
      match peek c with
      | Some (Kw "UNDER") ->
        ignore (advance c);
        comma_sep c ident
      | _ -> fail c "CREATE CLASS %s: missing UNDER <parent>" name
    in
    Ast.Create_class { name; parents }
  | Kw "INSTANCE" ->
    let name = ident c in
    let parents =
      match peek c with
      | Some (Kw "OF") ->
        ignore (advance c);
        comma_sep c ident
      | _ -> fail c "CREATE INSTANCE %s: missing OF <class>" name
    in
    Ast.Create_instance { name; parents }
  | Kw "ISA" ->
    let sub = ident c in
    expect_kw c "UNDER";
    let super = ident c in
    Ast.Create_isa { sub; super }
  | Kw "PREFERENCE" ->
    let stronger = ident c in
    expect_kw c "OVER";
    let weaker = ident c in
    Ast.Create_preference { weaker; stronger }
  | Kw "RELATION" ->
    let name = ident c in
    let attrs = attr_list c in
    Ast.Create_relation { name; attrs }
  | got -> fail c "CREATE: unexpected %a" pp_token got

let rec statement c =
  match advance c with
  | Kw "CREATE" -> create_stmt c
  | Kw "DROP" ->
    expect_kw c "RELATION";
    Ast.Drop_relation (ident c)
  | Kw "INSERT" ->
    expect_kw c "INTO";
    let rel = ident c in
    expect_kw c "VALUES";
    let rows = comma_sep c signed_row in
    Ast.Insert { rel; rows }
  | Kw "DELETE" ->
    expect_kw c "FROM";
    let rel = ident c in
    expect_kw c "VALUES";
    let rows = comma_sep c paren_values in
    Ast.Delete { rel; rows }
  | Kw "SELECT" ->
    expect c Star;
    expect_kw c "FROM";
    let start = next_loc c in
    let e = expr c in
    let e =
      match peek c with
      | Some (Kw "WHERE") ->
        ignore (advance c);
        let rec conds e =
          let attr = ident c in
          expect c Equals;
          let v = value c in
          let e = mk c start (Ast.Select (e, attr, v)) in
          match peek c with
          | Some (Kw "AND") ->
            ignore (advance c);
            conds e
          | _ -> e
        in
        conds e
      | _ -> e
    in
    let justified =
      match peek c with
      | Some (Kw "WITH") ->
        ignore (advance c);
        expect_kw c "JUSTIFICATION";
        true
      | _ -> false
    in
    Ast.Select_query { expr = e; justified }
  | Kw "LET" ->
    let name = ident c in
    expect c Equals;
    Ast.Let_binding { name; expr = expr c }
  | Kw "ASK" ->
    let rel = ident c in
    let values = paren_values c in
    let semantics =
      match peek c with
      | Some (Kw "UNDER") ->
        ignore (advance c);
        (match advance c with
        | Kw k -> (
          match semantics_of_kw k with
          | Some s -> Some s
          | None -> fail c "unknown semantics %s" k)
        | got -> fail c "expected a semantics name but found %a" pp_token got)
      | _ -> None
    in
    Ast.Ask { rel; values; semantics }
  | Kw "CONSOLIDATE" -> Ast.Consolidate (ident c)
  | Kw "EXPLICATE" ->
    let rel = ident c in
    let over =
      match peek c with
      | Some (Kw "ON") ->
        ignore (advance c);
        expect c Lparen;
        let attrs = comma_sep c ident in
        expect c Rparen;
        Some attrs
      | _ -> None
    in
    Ast.Explicate { rel; over }
  | Kw "CHECK" -> Ast.Check (ident c)
  | Kw "SHOW" -> (
    match advance c with
    | Kw "HIERARCHY" -> Ast.Show_hierarchy (ident c)
    | Kw "RELATIONS" -> Ast.Show_relations
    | Kw "HIERARCHIES" -> Ast.Show_hierarchies
    | got -> fail c "SHOW: unexpected %a" pp_token got)
  | Kw "EXPLAIN" -> (
    match peek c with
    | Some (Kw "PLAN") ->
      ignore (advance c);
      Ast.Explain_plan (expr c)
    | Some (Kw "ANALYZE") ->
      ignore (advance c);
      Ast.Explain_analyze (expr c)
    | Some (Kw "ESTIMATE") ->
      ignore (advance c);
      Ast.Explain_estimate (expr c)
    | Some (Kw "EFFECTS") ->
      ignore (advance c);
      Ast.Explain_effects (statement c)
    | _ ->
      let rel = ident c in
      let values = paren_values c in
      Ast.Explain { rel; values })
  | Kw "DIFF" ->
    let prev = term c in
    let next = term c in
    Ast.Diff { prev; next }
  | Kw "STATS" -> (
    match peek c with
    | Some (Kw "JSON") ->
      ignore (advance c);
      Ast.Stats { json = true }
    | Some (Kw "RESET") ->
      ignore (advance c);
      Ast.Stats_reset
    | _ -> Ast.Stats { json = false })
  | Kw "COUNT" ->
    let e = expr c in
    let by =
      match peek c with
      | Some (Kw "BY") ->
        ignore (advance c);
        Some (ident c)
      | _ -> None
    in
    Ast.Count { expr = e; by }
  | got -> fail c "unexpected %a at start of statement" pp_token got

let parse input =
  let c = { toks = tokenize_spans input; last = Loc.dummy } in
  let rec loop acc =
    match peek c with
    | None -> List.rev acc
    | Some Semicolon ->
      ignore (advance c);
      loop acc
    | Some _ ->
      let start = next_loc c in
      let s = statement c in
      let sloc = Loc.merge start c.last in
      (match peek c with
      | Some Semicolon -> ignore (advance c)
      | None -> ()
      | Some got -> fail c "expected ';' but found %a" pp_token got);
      loop ({ Ast.stmt = s; sloc } :: acc)
  in
  loop []

let parse_statement input =
  let c = { toks = []; last = Loc.dummy } in
  match parse input with
  | [ s ] -> s
  | [] -> fail c "empty input"
  | _ -> fail c "expected exactly one statement"
