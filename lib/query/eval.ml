(** HRQL statement evaluation against a catalog.

    Every statement produces a human-readable report string; errors
    (syntax, unknown names, integrity violations) are returned as
    [Error _] rather than raised, so a REPL can keep going. Inserts and
    deletes run inside a transaction and are rejected wholesale if the
    resulting relation would violate the ambiguity constraint, exactly as
    §3.1 of the paper requires. *)

module Hierarchy = Hr_hierarchy.Hierarchy
open Hierel

let buf_fmt f =
  let buf = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer buf in
  f ppf;
  Format.pp_print_flush ppf ();
  Buffer.contents buf

(* The hierarchy (registered in the catalog) that defines [name]. *)
let hierarchy_containing cat name =
  match List.filter (fun h -> Hierarchy.mem h name) (Catalog.hierarchies cat) with
  | [ h ] -> h
  | [] -> Types.model_error "no hierarchy defines %S" name
  | _ :: _ :: _ -> Types.model_error "%S is ambiguous across hierarchies" name

let resolve_values schema values =
  if List.length values <> Schema.arity schema then
    Types.model_error "expected %d values, got %d" (Schema.arity schema)
      (List.length values);
  let coords =
    List.mapi
      (fun i v ->
        let h = Schema.hierarchy schema i in
        let node = Hierarchy.find_exn h (Ast.value_name v) in
        (match v with
        | Ast.All _ when Hierarchy.is_instance h node ->
          Types.model_error "ALL %s: %s is an instance, not a class"
            (Ast.value_name v) (Ast.value_name v)
        | Ast.All _ | Ast.Atom _ -> ());
        node)
      values
  in
  Item.make schema (Array.of_list coords)

(* Static span names: picking the label by pattern match keeps a
   disabled [with_span] allocation-free. *)
let span_name e =
  match e.Ast.expr with
  | Ast.Rel _ -> "eval.rel"
  | Ast.Select _ -> "eval.select"
  | Ast.Project _ -> "eval.project"
  | Ast.Join _ -> "eval.join"
  | Ast.Union _ -> "eval.union"
  | Ast.Intersect _ -> "eval.intersect"
  | Ast.Except _ -> "eval.except"
  | Ast.Rename _ -> "eval.rename"
  | Ast.Consolidated _ -> "eval.consolidated"
  | Ast.Explicated _ -> "eval.explicated"

let rec eval_raw cat e =
  Hr_obs.Trace.with_span (span_name e) (fun () ->
      let result =
        match e.Ast.expr with
        | Ast.Rel name -> Catalog.relation cat name
        | Ast.Select (e, attr, v) ->
          Ops.select (eval_raw cat e) ~attr ~value:(Ast.value_name v)
        | Ast.Project (e, attrs) -> Ops.project (eval_raw cat e) attrs
        | Ast.Join (a, b) -> Ops.join (eval_raw cat a) (eval_raw cat b)
        | Ast.Union (a, b) -> Ops.union (eval_raw cat a) (eval_raw cat b)
        | Ast.Intersect (a, b) -> Ops.inter (eval_raw cat a) (eval_raw cat b)
        | Ast.Except (a, b) -> Ops.diff (eval_raw cat a) (eval_raw cat b)
        | Ast.Rename (e, old_name, new_name) ->
          Ops.rename (eval_raw cat e) ~old_name ~new_name
        | Ast.Consolidated e -> Consolidate.consolidate (eval_raw cat e)
        | Ast.Explicated (e, over) -> Explicate.explicate ?over (eval_raw cat e)
      in
      if Hr_obs.Trace.enabled () then
        Hr_obs.Trace.note "rows" (Relation.cardinality result);
      result)

(* Statements evaluate optimized plans; the rewrites preserve the
   equivalent flat relation (see [Optimizer]). *)
let eval_expr cat expr = eval_raw cat (Optimizer.optimize expr)

(* ---- EXPLAIN ANALYZE --------------------------------------------------- *)

(* One evaluated plan node. Counter and time fields are inclusive of the
   node's subtree, like the "actual time" convention of SQL EXPLAIN
   ANALYZE: the root row shows the whole query's cost. *)
type analyzed = {
  a_label : string;
  a_rows : int;
  a_subs : int;  (* hierarchy.subsumption_checks delta *)
  a_reach : int;  (* graph.reach.queries delta *)
  a_verdicts : int;  (* core.binding.verdicts delta *)
  a_probes : int;  (* core.binding.index_probes delta *)
  a_time_ns : int;
  a_children : analyzed list;
}

let node_label e =
  match e.Ast.expr with
  | Ast.Rel name -> "scan " ^ name
  | Ast.Select (_, attr, v) -> Printf.sprintf "select[%s=%s]" attr (Ast.value_name v)
  | Ast.Project (_, attrs) -> Printf.sprintf "project[%s]" (String.concat "," attrs)
  | Ast.Join _ -> "join"
  | Ast.Union _ -> "union"
  | Ast.Intersect _ -> "intersect"
  | Ast.Except _ -> "except"
  | Ast.Rename (_, o, n) -> Printf.sprintf "rename[%s->%s]" o n
  | Ast.Consolidated _ -> "consolidated"
  | Ast.Explicated _ -> "explicated"

let rec analyze_raw cat e =
  let subs name = Hr_obs.Metrics.counter_value name in
  let t0 = Hr_obs.Metrics.now_ns () in
  let subs0 = subs "hierarchy.subsumption_checks" in
  let reach0 = subs "graph.reach.queries" in
  let verd0 = subs "core.binding.verdicts" in
  let probe0 = subs "core.binding.index_probes" in
  let rel, children =
    let one sub = let r, a = analyze_raw cat sub in (r, [ a ]) in
    let two a b op =
      let ra, aa = analyze_raw cat a in
      let rb, ab = analyze_raw cat b in
      (op ra rb, [ aa; ab ])
    in
    match e.Ast.expr with
    | Ast.Rel name -> (Catalog.relation cat name, [])
    | Ast.Select (sub, attr, v) ->
      let r, kids = one sub in
      (Ops.select r ~attr ~value:(Ast.value_name v), kids)
    | Ast.Project (sub, attrs) ->
      let r, kids = one sub in
      (Ops.project r attrs, kids)
    | Ast.Join (a, b) -> two a b (fun x y -> Ops.join x y)
    | Ast.Union (a, b) -> two a b (fun x y -> Ops.union x y)
    | Ast.Intersect (a, b) -> two a b (fun x y -> Ops.inter x y)
    | Ast.Except (a, b) -> two a b (fun x y -> Ops.diff x y)
    | Ast.Rename (sub, old_name, new_name) ->
      let r, kids = one sub in
      (Ops.rename r ~old_name ~new_name, kids)
    | Ast.Consolidated sub ->
      let r, kids = one sub in
      (Consolidate.consolidate r, kids)
    | Ast.Explicated (sub, over) ->
      let r, kids = one sub in
      (Explicate.explicate ?over r, kids)
  in
  ( rel,
    {
      a_label = node_label e;
      a_rows = Relation.cardinality rel;
      a_subs = subs "hierarchy.subsumption_checks" - subs0;
      a_reach = subs "graph.reach.queries" - reach0;
      a_verdicts = subs "core.binding.verdicts" - verd0;
      a_probes = subs "core.binding.index_probes" - probe0;
      a_time_ns = Hr_obs.Metrics.now_ns () - t0;
      a_children = children;
    } )

let render_analyzed root =
  let buf = Buffer.create 512 in
  let rec walk depth a =
    Buffer.add_string buf
      (Printf.sprintf
         "%s%s  rows=%d subsumption=%d reach=%d verdicts=%d probes=%d time=%.3fms\n"
         (String.make (2 * depth) ' ')
         a.a_label a.a_rows a.a_subs a.a_reach a.a_verdicts a.a_probes
         (float_of_int a.a_time_ns /. 1e6));
    List.iter (walk (depth + 1)) a.a_children
  in
  walk 0 root;
  Buffer.contents buf

(* Feedback to the static estimator: measured row counts flow back into
   the catalog's observed-statistics store, keyed the way the estimator
   looks them up — the whole stored extension of a scanned relation, or
   a selection directly over one. *)
let rec record_actuals cat plan (a : analyzed) =
  (match plan.Ast.expr, a.a_children with
  | Ast.Rel name, _ -> Catalog.record_stat cat ~rel:name ~label:"*" a.a_rows
  | Ast.Select ({ Ast.expr = Ast.Rel name; _ }, attr, v), _ ->
    Catalog.record_stat cat ~rel:name
      ~label:(Printf.sprintf "%s=%s" attr (Ast.value_name v))
      a.a_rows
  | _ -> ());
  let children =
    match plan.Ast.expr with
    | Ast.Rel _ -> []
    | Ast.Select (e, _, _)
    | Ast.Project (e, _)
    | Ast.Rename (e, _, _)
    | Ast.Consolidated e
    | Ast.Explicated (e, _) ->
      [ e ]
    | Ast.Join (x, y) | Ast.Union (x, y) | Ast.Intersect (x, y) | Ast.Except (x, y)
      ->
      [ x; y ]
  in
  List.iter2 (record_actuals cat) children a.a_children

(* Counters are forced on for the duration so the per-node deltas are
   real even if the process runs with the registry disabled. *)
let explain_analyze cat expr =
  let plan = Optimizer.optimize expr in
  Hr_obs.Metrics.with_enabled true (fun () ->
      let rel, root = analyze_raw cat plan in
      record_actuals cat plan root;
      Printf.sprintf "plan: %s\n%sresult: %d tuple(s)" (Optimizer.describe plan)
        (render_analyzed root) (Relation.cardinality rel))

(* ---- EXPLAIN ESTIMATE -------------------------------------------------- *)

(* The cost estimator lives a layer up (Hr_analysis.Estimate, which also
   serves `hrdb lint`), so it registers itself here at module-init time
   rather than being called directly — the dependency points the other
   way. Executables that evaluate HRQL all link the analysis library. *)
let estimator :
    (Catalog.t -> Ast.query_expr -> (string, string) result) ref =
  ref (fun _ _ ->
      Error "EXPLAIN ESTIMATE: no estimator registered (link hr_analysis)")

let set_estimator f = estimator := f

(* Same late-binding trick for EXPLAIN EFFECTS: the footprint analysis
   (Hr_analysis.Effect) registers its renderer here at link time. *)
let effects_renderer :
    (Catalog.t -> Ast.statement -> (string, string) result) ref =
  ref (fun _ _ ->
      Error "EXPLAIN EFFECTS: no effect analysis registered (link hr_analysis)")

let set_effects_renderer f = effects_renderer := f

let render_relation rel =
  buf_fmt (fun ppf ->
      Format.fprintf ppf "%s (%d tuple%s)@.%a" (Relation.name rel)
        (Relation.cardinality rel)
        (if Relation.cardinality rel = 1 then "" else "s")
        Relation.pp rel)

let render_tuples schema tuples =
  let rows =
    List.map
      (fun (t : Relation.tuple) ->
        Format.asprintf "%a" Types.pp_sign t.Relation.sign
        :: List.init (Schema.arity schema) (fun i ->
               let h = Schema.hierarchy schema i in
               let v = Item.coord t.Relation.item i in
               if Hierarchy.is_class h v then "V " ^ Hierarchy.node_label h v
               else Hierarchy.node_label h v))
      tuples
  in
  Hr_util.Texttable.render_rows ~headers:("" :: Schema.names schema) rows

let render_conflicts schema = function
  | [] -> "consistent: the ambiguity constraint holds"
  | conflicts ->
    buf_fmt (fun ppf ->
        Format.fprintf ppf "%d unresolved conflict(s):@." (List.length conflicts);
        List.iter
          (fun c -> Format.fprintf ppf "%a@." (Integrity.pp_conflict schema) c)
          conflicts)

let violation_report (violations : Txn.violation list) =
  buf_fmt (fun ppf ->
      Format.fprintf ppf "rejected: update would violate the ambiguity constraint@.";
      List.iter
        (fun (v : Txn.violation) ->
          Format.fprintf ppf "relation %s: %d conflict(s)@." v.Txn.relation_name
            (List.length v.Txn.conflicts))
        violations)

let exec cat stmt =
  try
    Ok
      (match stmt with
      | Ast.Create_domain name ->
        Catalog.define_hierarchy cat (Hierarchy.create name);
        Printf.sprintf "domain %s created" name
      (* Hierarchy DDL goes through the catalog's copy-on-write path:
         in-place when the hierarchy is unfrozen (REPL, replay, tests),
         copy-swap-rebind when a published snapshot shares it. *)
      | Ast.Create_class { name; parents } ->
        let h = hierarchy_containing cat (List.hd parents) in
        Catalog.update_hierarchy cat h (fun h ->
            ignore (Hierarchy.add_class h ~parents name));
        Printf.sprintf "class %s created" name
      | Ast.Create_instance { name; parents } ->
        let h = hierarchy_containing cat (List.hd parents) in
        Catalog.update_hierarchy cat h (fun h ->
            ignore (Hierarchy.add_instance h ~parents name));
        Printf.sprintf "instance %s created" name
      | Ast.Create_isa { sub; super } ->
        let h = hierarchy_containing cat super in
        Catalog.update_hierarchy cat h (fun h -> Hierarchy.add_isa h ~sub ~super);
        Printf.sprintf "isa edge %s -> %s created" super sub
      | Ast.Create_preference { weaker; stronger } ->
        let h = hierarchy_containing cat weaker in
        Catalog.update_hierarchy cat h (fun h ->
            Hierarchy.add_preference h ~weaker ~stronger);
        Printf.sprintf "preference %s over %s created" stronger weaker
      | Ast.Create_relation { name; attrs } ->
        let schema =
          Schema.make (List.map (fun (a, d) -> (a, Catalog.hierarchy cat d)) attrs)
        in
        Catalog.define_relation cat (Relation.empty ~name schema);
        Printf.sprintf "relation %s created" name
      | Ast.Drop_relation name ->
        ignore (Catalog.relation cat name);
        Catalog.drop_relation cat name;
        Printf.sprintf "relation %s dropped" name
      | Ast.Insert { rel; rows } -> (
        let txn = Txn.begin_ cat in
        let schema = Relation.schema (Catalog.relation cat rel) in
        List.iter
          (fun { Ast.sign; values } ->
            Txn.insert_item txn ~rel sign (resolve_values schema values))
          rows;
        match Txn.commit txn with
        | Ok () -> Printf.sprintf "%d tuple(s) inserted into %s" (List.length rows) rel
        | Error violations -> failwith (violation_report violations))
      | Ast.Delete { rel; rows } -> (
        let txn = Txn.begin_ cat in
        let schema = Relation.schema (Catalog.relation cat rel) in
        List.iter
          (fun values -> Txn.delete_item txn ~rel (resolve_values schema values))
          rows;
        match Txn.commit txn with
        | Ok () -> Printf.sprintf "%d tuple(s) deleted from %s" (List.length rows) rel
        | Error violations -> failwith (violation_report violations))
      | Ast.Select_query { expr; justified } -> (
        match expr.Ast.expr, justified with
        | Ast.Select ({ Ast.expr = Ast.Rel name; _ }, attr, v), true ->
          let rel = Catalog.relation cat name in
          let result, applicable =
            Ops.select_justified rel ~attr ~value:(Ast.value_name v)
          in
          render_relation result ^ "justification (applicable tuples):\n"
          ^ render_tuples (Relation.schema rel) applicable
        | _, true ->
          render_relation (eval_expr cat expr)
          ^ "note: WITH JUSTIFICATION applies to a simple SELECT on a stored relation\n"
        | _, false -> render_relation (eval_expr cat expr))
      | Ast.Let_binding { name; expr } ->
        let rel = Relation.with_name (eval_expr cat expr) name in
        (match Catalog.find_relation cat name with
        | Some _ -> Catalog.replace_relation cat rel
        | None -> Catalog.define_relation cat rel);
        Printf.sprintf "%s defined (%d tuples)" name (Relation.cardinality rel)
      | Ast.Ask { rel; values; semantics } ->
        let r = Catalog.relation cat rel in
        let schema = Relation.schema r in
        let item = resolve_values schema values in
        buf_fmt (fun ppf ->
            Binding.pp_verdict schema ppf (Binding.verdict ?semantics r item))
      | Ast.Consolidate name ->
        let rel = Catalog.relation cat name in
        let consolidated, removed = Consolidate.consolidate_verbose rel in
        Catalog.replace_relation cat consolidated;
        Printf.sprintf "%s consolidated: %d redundant tuple(s) removed, %d remain" name
          (List.length removed)
          (Relation.cardinality consolidated)
      | Ast.Explicate { rel; over } ->
        let r = Catalog.relation cat rel in
        let explicated = Explicate.explicate ?over r in
        Catalog.replace_relation cat explicated;
        Printf.sprintf "%s explicated: %d tuple(s)" rel (Relation.cardinality explicated)
      | Ast.Check name ->
        let rel = Catalog.relation cat name in
        render_conflicts (Relation.schema rel) (Integrity.check rel)
      | Ast.Show_hierarchy name ->
        let h = Catalog.hierarchy cat name in
        buf_fmt (fun ppf -> Hierarchy.pp ppf h)
      | Ast.Show_relations ->
        buf_fmt (fun ppf ->
            List.iter
              (fun r ->
                Format.fprintf ppf "%s %a (%d tuples)@." (Relation.name r) Schema.pp
                  (Relation.schema r) (Relation.cardinality r))
              (List.sort
                 (fun a b -> String.compare (Relation.name a) (Relation.name b))
                 (Catalog.relations cat)))
      | Ast.Show_hierarchies ->
        buf_fmt (fun ppf ->
            List.iter
              (fun h ->
                Format.fprintf ppf "%a (%d nodes)@." Hr_util.Symbol.pp
                  (Hierarchy.domain h) (Hierarchy.node_count h))
              (List.sort
                 (fun a b ->
                   Hr_util.Symbol.compare (Hierarchy.domain a) (Hierarchy.domain b))
                 (Catalog.hierarchies cat)))
      | Ast.Explain_plan expr ->
        Printf.sprintf "naive:     %s\noptimized: %s"
          (Optimizer.describe expr)
          (Optimizer.describe (Optimizer.optimize expr))
      | Ast.Explain_analyze expr -> explain_analyze cat expr
      | Ast.Explain_estimate expr -> (
        match !estimator cat expr with Ok out -> out | Error msg -> failwith msg)
      | Ast.Explain_effects stmt -> (
        match !effects_renderer cat stmt with
        | Ok out -> out
        | Error msg -> failwith msg)
      | Ast.Stats { json } ->
        let snap = Hr_obs.Metrics.snapshot () in
        if json then Hr_obs.Metrics.render_json snap
        else Hr_obs.Metrics.render_text snap
      | Ast.Stats_reset ->
        Hr_obs.Metrics.reset ();
        "metrics registry reset"
      | Ast.Count { expr; by } -> (
        let rel = eval_expr cat expr in
        match by with
        | None -> Printf.sprintf "count: %d" (Aggregate.count rel)
        | Some attr ->
          let rows =
            List.map (fun (label, n) -> [ label; string_of_int n ])
              (Aggregate.histogram rel ~attr)
          in
          Hr_util.Texttable.render_rows ~headers:[ attr; "count" ] rows)
      | Ast.Diff { prev; next } ->
        let prev = eval_expr cat prev and next = eval_expr cat next in
        let d = Rel_diff.diff ~prev ~next in
        buf_fmt (fun ppf -> Rel_diff.pp (Relation.schema prev) ppf d)
      | Ast.Explain { rel; values } ->
        let r = Catalog.relation cat rel in
        let schema = Relation.schema r in
        let item = resolve_values schema values in
        let verdict = Binding.verdict r item in
        let applicable = Binding.justification r item in
        buf_fmt (fun ppf ->
            Format.fprintf ppf "verdict: %a@.applicable tuples:@.%s"
              (Binding.pp_verdict schema) verdict
              (render_tuples schema applicable)))
  with
  | Types.Model_error msg -> Error msg
  | Hierarchy.Error msg -> Error msg
  | Failure msg -> Error msg

let run_script cat input =
  match Parser.parse input with
  | exception Parser.Parse_error { msg; _ } -> Error ("parse error: " ^ msg)
  | exception Lexer.Lex_error { msg; _ } -> Error ("lex error: " ^ msg)
  | stmts ->
    let rec loop acc = function
      | [] -> Ok (List.rev acc)
      | { Ast.stmt; sloc } :: rest -> (
        match exec cat stmt with
        | Ok out -> loop (out :: acc) rest
        | Error msg ->
          Error (Format.asprintf "at %a: %s" Loc.pp_prose sloc msg))
    in
    loop [] stmts
