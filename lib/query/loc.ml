(** Source locations for HRQL scripts.

    A position is a 1-based line and column; a location is a half-open
    span [lo, hi) over one script. The lexer stamps every token with its
    span, the parser merges token spans into statement and expression
    spans, and downstream consumers (evaluator error messages, the
    static analyzer's diagnostics) report them. *)

type pos = { line : int; col : int }

type t = { lo : pos; hi : pos }

let dummy = { lo = { line = 0; col = 0 }; hi = { line = 0; col = 0 } }

let is_dummy l = l.lo.line = 0

let make ~lo ~hi = { lo; hi }

(* Spans are merged left-to-right as the parser consumes tokens; a dummy
   operand (e.g. a synthesized node) defers to the other side. *)
let merge a b =
  if is_dummy a then b
  else if is_dummy b then a
  else { lo = a.lo; hi = b.hi }

let compare a b =
  match Stdlib.compare a.lo.line b.lo.line with
  | 0 -> Stdlib.compare a.lo.col b.lo.col
  | c -> c

let pp ppf l =
  if is_dummy l then Format.pp_print_string ppf "?:?"
  else if l.lo.line = l.hi.line then
    Format.fprintf ppf "%d:%d-%d" l.lo.line l.lo.col l.hi.col
  else Format.fprintf ppf "%d:%d-%d:%d" l.lo.line l.lo.col l.hi.line l.hi.col

let pp_prose ppf l =
  if is_dummy l then Format.pp_print_string ppf "unknown location"
  else Format.fprintf ppf "line %d, column %d" l.lo.line l.lo.col

let to_string l = Format.asprintf "%a" pp l
