(** Tokenizer for HRQL.

    Surface syntax summary (case-insensitive keywords, [--] line
    comments):

    {v
    CREATE DOMAIN animal;
    CREATE CLASS bird UNDER animal;
    CREATE CLASS galapagos_penguin UNDER penguin;
    CREATE INSTANCE tweety OF canary;
    CREATE ISA amazing_flying_penguin UNDER penguin;
    CREATE PREFERENCE royal_elephant OVER indian_elephant;
    CREATE RELATION flies (creature: animal);
    INSERT INTO flies VALUES (+ ALL bird), (- ALL penguin), (+ peter);
    DELETE FROM flies VALUES (ALL bird);
    SELECT * FROM flies WHERE creature = tweety WITH JUSTIFICATION;
    LET grumpy = flies EXCEPT likes;
    ASK flies (patricia);
    ASK flies (patricia) UNDER ON-PATH;
    CONSOLIDATE respects;
    EXPLICATE flies;  EXPLICATE colors ON (animal);
    CHECK respects;
    SHOW HIERARCHY animal;  SHOW RELATIONS;  SHOW HIERARCHIES;
    EXPLAIN flies (patricia);
    v} *)

type token =
  | Ident of string
  | Kw of string  (** upper-cased keyword *)
  | Lparen
  | Rparen
  | Comma
  | Semicolon
  | Colon
  | Equals
  | Plus
  | Minus
  | Star

exception Lex_error of { msg : string; loc : Loc.t }
(** [msg] already names the line and column; [loc] carries them
    structurally for diagnostics. *)

val tokenize_spans : string -> (token * Loc.t) list
(** Tokens stamped with their source spans. Raises {!Lex_error} on an
    unexpected character. *)

val tokenize : string -> token list
(** {!tokenize_spans} without the spans. *)

val pp_token : Format.formatter -> token -> unit
