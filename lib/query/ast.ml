(** Abstract syntax of HRQL, the query language over the hierarchical
    relational model. One statement per [;]. See [lexer.mli] for the
    surface syntax summary and [eval.ml] for the semantics of each
    statement.

    Every expression node and statement carries the source span the
    parser consumed for it, so error messages and static diagnostics can
    point into the script. Nodes built programmatically (tests, the
    optimizer's rewrites) use {!Loc.dummy} or inherit the span of the
    node they replace. *)

type value =
  | All of string  (** [ALL name] — a universally quantified class value *)
  | Atom of string  (** a bare class or instance name *)

(* [All] and [Atom] resolve to the same node; the distinction is kept so
   the evaluator can reject [ALL] on instances and warn the other way,
   mirroring the paper's V-prefix notation. *)

type signed_row = { sign : Hierel.Types.sign; values : value list }

type query_expr = { expr : expr_node; eloc : Loc.t }

and expr_node =
  | Rel of string  (** a stored relation *)
  | Select of query_expr * string * value  (** WHERE attr = value *)
  | Project of query_expr * string list
  | Join of query_expr * query_expr
  | Union of query_expr * query_expr
  | Intersect of query_expr * query_expr
  | Except of query_expr * query_expr
  | Rename of query_expr * string * string
  | Consolidated of query_expr
  | Explicated of query_expr * string list option  (** [None] = all attrs *)

type statement =
  | Create_domain of string
  | Create_class of { name : string; parents : string list }
  | Create_instance of { name : string; parents : string list }
  | Create_isa of { sub : string; super : string }
  | Create_preference of { weaker : string; stronger : string }
  | Create_relation of { name : string; attrs : (string * string) list }
      (** attribute name, domain name *)
  | Drop_relation of string
  | Insert of { rel : string; rows : signed_row list }
  | Delete of { rel : string; rows : value list list }
  | Select_query of { expr : query_expr; justified : bool }
  | Let_binding of { name : string; expr : query_expr }
  | Ask of { rel : string; values : value list; semantics : Hierel.Types.semantics option }
  | Consolidate of string  (** in place, via the catalog *)
  | Explicate of { rel : string; over : string list option }
  | Check of string
  | Show_hierarchy of string
  | Show_relations
  | Show_hierarchies
  | Explain of { rel : string; values : value list }
  | Explain_plan of query_expr
  | Explain_analyze of query_expr
      (** run the optimized plan with per-node counters and timings *)
  | Explain_estimate of query_expr
      (** price the optimized plan statically — per-node estimated rows
          and cost, no evaluation *)
  | Explain_effects of statement
      (** print the statement's abstract footprint (hierarchy-cone
          read/write atoms) without executing it — docs/EFFECTS.md *)
  | Count of { expr : query_expr; by : string option }
  | Diff of { prev : query_expr; next : query_expr }
  | Stats of { json : bool }  (** snapshot of the metrics registry *)
  | Stats_reset

type located_statement = { stmt : statement; sloc : Loc.t }

let value_name = function All s | Atom s -> s

(* Whether executing the statement can change durable catalog state —
   the WAL-logging predicate (storage) and the effect analysis agree on
   this single definition. EXPLAIN EFFECTS only inspects its nested
   statement, so it is a read whatever the statement is. *)
let mutating = function
  | Create_domain _ | Create_class _ | Create_instance _ | Create_isa _
  | Create_preference _ | Create_relation _ | Drop_relation _ | Insert _
  | Delete _ | Let_binding _ | Consolidate _ | Explicate _ ->
    true
  | Select_query _ | Ask _ | Check _ | Show_hierarchy _ | Show_relations
  | Show_hierarchies | Explain _ | Explain_plan _ | Explain_analyze _
  | Explain_estimate _ | Explain_effects _ | Count _ | Diff _ | Stats _
  | Stats_reset ->
    false

let at ?(loc = Loc.dummy) expr = { expr; eloc = loc }
(** Wrap an expression node, defaulting to an unknown span — the
    programmatic constructor for rewrites and tests. *)

let with_expr e expr = { e with expr }
(** Replace a node, keeping the original source span. *)
