type token =
  | Ident of string
  | Kw of string
  | Lparen
  | Rparen
  | Comma
  | Semicolon
  | Colon
  | Equals
  | Plus
  | Minus
  | Star

exception Lex_error of { msg : string; loc : Loc.t }

let lex_error loc fmt =
  Format.kasprintf (fun msg -> raise (Lex_error { msg; loc })) fmt

let keywords =
  [
    "CREATE"; "DOMAIN"; "CLASS"; "INSTANCE"; "ISA"; "PREFERENCE"; "OVER";
    "RELATION"; "UNDER"; "OF"; "INSERT"; "INTO"; "VALUES"; "DELETE"; "FROM";
    "SELECT"; "WHERE"; "WITH"; "JUSTIFICATION"; "ALL"; "LET"; "JOIN"; "UNION";
    "INTERSECT"; "EXCEPT"; "PROJECT"; "ON"; "RENAME"; "TO"; "AS"; "ASK";
    "CONSOLIDATE"; "EXPLICATE"; "CHECK"; "SHOW"; "HIERARCHY"; "HIERARCHIES";
    "RELATIONS"; "EXPLAIN"; "DROP"; "OFF-PATH"; "ON-PATH"; "NO-PREEMPTION";
    "CONSOLIDATED"; "EXPLICATED"; "COUNT"; "PLAN"; "BY"; "AND"; "DIFF";
    "ANALYZE"; "ESTIMATE"; "EFFECTS"; "STATS"; "JSON"; "RESET";
  ]

let is_ident_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '&' || c = '-'

(* The scanner tracks the current line and column alongside the byte
   offset; a token's span covers [start, just-past-end). *)
type scan = { mutable i : int; mutable line : int; mutable col : int }

let tokenize_spans input =
  let n = String.length input in
  let s = { i = 0; line = 1; col = 1 } in
  let pos () = { Loc.line = s.line; col = s.col } in
  let bump () =
    (if input.[s.i] = '\n' then begin
       s.line <- s.line + 1;
       s.col <- 1
     end
     else s.col <- s.col + 1);
    s.i <- s.i + 1
  in
  let rec skip () =
    if s.i < n then
      match input.[s.i] with
      | ' ' | '\t' | '\n' | '\r' ->
        bump ();
        skip ()
      | '-' when s.i + 1 < n && input.[s.i + 1] = '-' ->
        while s.i < n && input.[s.i] <> '\n' do
          bump ()
        done;
        skip ()
      | _ -> ()
  in
  let rec loop acc =
    skip ();
    if s.i >= n then List.rev acc
    else begin
      let lo = pos () in
      let single tok =
        bump ();
        (tok, Loc.make ~lo ~hi:(pos ()))
      in
      match input.[s.i] with
      | '(' -> loop (single Lparen :: acc)
      | ')' -> loop (single Rparen :: acc)
      | ',' -> loop (single Comma :: acc)
      | ';' -> loop (single Semicolon :: acc)
      | ':' -> loop (single Colon :: acc)
      | '=' -> loop (single Equals :: acc)
      | '+' -> loop (single Plus :: acc)
      | '*' -> loop (single Star :: acc)
      | '-' when s.i + 1 >= n || not (is_ident_char input.[s.i + 1]) ->
        loop (single Minus :: acc)
      | c when is_ident_char c || c = '-' ->
        let start = s.i in
        while s.i < n && is_ident_char input.[s.i] do
          bump ()
        done;
        let word = String.sub input start (s.i - start) in
        let upper = String.uppercase_ascii word in
        let tok = if List.mem upper keywords then Kw upper else Ident word in
        loop ((tok, Loc.make ~lo ~hi:(pos ())) :: acc)
      | c ->
        let loc = Loc.make ~lo ~hi:{ lo with Loc.col = lo.Loc.col + 1 } in
        lex_error loc "unexpected character %C at line %d, column %d" c lo.Loc.line
          lo.Loc.col
    end
  in
  loop []

let tokenize input = List.map fst (tokenize_spans input)

let pp_token ppf = function
  | Ident s -> Format.fprintf ppf "identifier %S" s
  | Kw s -> Format.fprintf ppf "keyword %s" s
  | Lparen -> Format.pp_print_string ppf "'('"
  | Rparen -> Format.pp_print_string ppf "')'"
  | Comma -> Format.pp_print_string ppf "','"
  | Semicolon -> Format.pp_print_string ppf "';'"
  | Colon -> Format.pp_print_string ppf "':'"
  | Equals -> Format.pp_print_string ppf "'='"
  | Plus -> Format.pp_print_string ppf "'+'"
  | Minus -> Format.pp_print_string ppf "'-'"
  | Star -> Format.pp_print_string ppf "'*'"
