open Ast

(* Whether a selection on [attr] can reach into this expression — i.e.
   the expression's schema certainly carries the attribute. Conservative:
   when we cannot tell (a bare relation name — the catalog is not
   consulted here), we answer "maybe", and pushdown through joins only
   fires when exactly the operand structure makes it safe. *)
let rec mentions_attr e attr =
  match e.expr with
  | Rel _ -> `Maybe
  | Select (e, _, _) -> mentions_attr e attr
  | Project (_, attrs) -> if List.mem attr attrs then `Yes else `No
  | Rename (e, old_name, new_name) ->
    if attr = new_name then `Yes
    else if attr = old_name then `No
    else mentions_attr e attr
  | Join (a, b) -> (
    match mentions_attr a attr, mentions_attr b attr with
    | `Yes, _ | _, `Yes -> `Yes
    | `No, `No -> `No
    | _, _ -> `Maybe)
  | Union (a, _) | Intersect (a, _) | Except (a, _) -> mentions_attr a attr
  | Consolidated e | Explicated (e, _) -> mentions_attr e attr

(* Drop stored-form re-representations in operand position. *)
let rec strip_representation e =
  match e.expr with
  | Consolidated inner | Explicated (inner, _) -> strip_representation inner
  | _ -> e

(* Rewrites keep the source span of the node they replace, so a plan
   step still points back at the script text it came from. *)
let rec rewrite inner e =
  match e.expr with
  | Rel _ -> e
  | Select (operand, attr, v) -> (
    let operand = rewrite true operand in
    let sel o = with_expr e (Select (o, attr, v)) in
    match operand.expr with
    | Union (a, b) ->
      with_expr operand (Union (rewrite true (sel a), rewrite true (sel b)))
    | Intersect (a, b) ->
      with_expr operand (Intersect (rewrite true (sel a), rewrite true (sel b)))
    | Except (a, b) ->
      with_expr operand (Except (rewrite true (sel a), rewrite true (sel b)))
    | Join (a, b) -> (
      (* push onto each side that certainly carries the attribute; if
         neither certainly does, leave the selection above the join *)
      match mentions_attr a attr, mentions_attr b attr with
      | `Yes, `Yes ->
        with_expr operand (Join (rewrite true (sel a), rewrite true (sel b)))
      | `Yes, (`No | `Maybe) -> with_expr operand (Join (rewrite true (sel a), b))
      | (`No | `Maybe), `Yes -> with_expr operand (Join (a, rewrite true (sel b)))
      | _, _ -> sel operand)
    | Select (e', attr', v') when attr = attr' && Ast.value_name v = Ast.value_name v' ->
      sel e'
    | _ -> sel operand)
  | Project (operand, attrs) -> (
    let operand = rewrite true operand in
    match operand.expr with
    | Project (e', attrs') when List.for_all (fun a -> List.mem a attrs') attrs ->
      with_expr e (Project (e', attrs))
    | _ -> with_expr e (Project (operand, attrs)))
  | Join (a, b) -> with_expr e (Join (rewrite true a, rewrite true b))
  | Union (a, b) -> with_expr e (Union (rewrite true a, rewrite true b))
  | Intersect (a, b) -> with_expr e (Intersect (rewrite true a, rewrite true b))
  | Except (a, b) -> with_expr e (Except (rewrite true a, rewrite true b))
  | Rename (operand, o, n) -> with_expr e (Rename (rewrite true operand, o, n))
  | Consolidated operand ->
    let operand = rewrite true (strip_representation operand) in
    if inner then operand else with_expr e (Consolidated operand)
  | Explicated (operand, over) ->
    let operand = rewrite true (strip_representation operand) in
    if inner then operand else with_expr e (Explicated (operand, over))

let optimize expr = rewrite false expr

let rec describe e =
  match e.expr with
  | Rel name -> name
  | Select (e, attr, v) ->
    Printf.sprintf "select[%s=%s](%s)" attr (Ast.value_name v) (describe e)
  | Project (e, attrs) -> Printf.sprintf "project[%s](%s)" (String.concat "," attrs) (describe e)
  | Join (a, b) -> Printf.sprintf "join(%s, %s)" (describe a) (describe b)
  | Union (a, b) -> Printf.sprintf "union(%s, %s)" (describe a) (describe b)
  | Intersect (a, b) -> Printf.sprintf "intersect(%s, %s)" (describe a) (describe b)
  | Except (a, b) -> Printf.sprintf "except(%s, %s)" (describe a) (describe b)
  | Rename (e, o, n) -> Printf.sprintf "rename[%s->%s](%s)" o n (describe e)
  | Consolidated e -> Printf.sprintf "consolidated(%s)" (describe e)
  | Explicated (e, None) -> Printf.sprintf "explicated(%s)" (describe e)
  | Explicated (e, Some attrs) ->
    Printf.sprintf "explicated[%s](%s)" (String.concat "," attrs) (describe e)
