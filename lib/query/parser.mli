(** Recursive-descent parser for HRQL.

    Grammar sketch (keywords capitalised, [;] terminates statements):

    {v
    stmt   ::= CREATE DOMAIN id
             | CREATE CLASS id [UNDER id {, id}]
             | CREATE INSTANCE id [OF id {, id}]
             | CREATE ISA id UNDER id
             | CREATE PREFERENCE id OVER id
             | CREATE RELATION id ( id : id {, id : id} )
             | DROP RELATION id
             | INSERT INTO id VALUES row {, row}
             | DELETE FROM id VALUES ( value {, value} ) {, ...}
             | SELECT * FROM expr [WHERE id = value] [WITH JUSTIFICATION]
             | LET id = expr
             | ASK id ( value {, value} ) [UNDER semantics]
             | CONSOLIDATE id
             | EXPLICATE id [ON ( id {, id} )]
             | CHECK id
             | SHOW HIERARCHY id | SHOW RELATIONS | SHOW HIERARCHIES
             | EXPLAIN id ( value {, value} )
    row    ::= ( sign value {, value} )
    sign   ::= + | -
    value  ::= ALL id | id
    expr   ::= term { (UNION|INTERSECT|EXCEPT|JOIN) term }
    term   ::= id
             | ( expr )
             | SELECT expr WHERE id = value
             | PROJECT expr ON ( id {, id} )
             | RENAME expr id TO id
             | CONSOLIDATED expr
             | EXPLICATED expr [ON ( id {, id} )]
    semantics ::= OFF-PATH | ON-PATH | NO-PREEMPTION
    v}

    Set operators associate left and have equal precedence; parenthesize
    to disambiguate. Every parsed statement and expression node carries
    the source span it was read from. *)

exception Parse_error of { msg : string; loc : Loc.t }
(** [msg] already names the line and column; [loc] carries them
    structurally for diagnostics. *)

val parse : string -> Ast.located_statement list
(** Tokenizes and parses a whole script. Raises {!Parse_error} or
    {!Lexer.Lex_error}. *)

val parse_statement : string -> Ast.located_statement
(** Parses exactly one statement (the trailing [;] is optional). *)
