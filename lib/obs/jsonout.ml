(* A minimal JSON value type and printer, so the observability layer can
   emit machine-readable output without an external dependency. Only
   emission is provided — nothing in this repository parses JSON. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let rec emit buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float f ->
    if Float.is_integer f && Float.abs f < 1e15 then
      Buffer.add_string buf (Printf.sprintf "%.1f" f)
    else Buffer.add_string buf (Printf.sprintf "%.6g" f)
  | String s -> escape buf s
  | List items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char buf ',';
        emit buf item)
      items;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape buf k;
        Buffer.add_char buf ':';
        emit buf v)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  emit buf v;
  Buffer.contents buf
