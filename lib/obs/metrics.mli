(** A process-wide metrics registry.

    Three instrument kinds, all identified by dotted names
    (["storage.pager.disk_reads"]): monotonic {b counters}, {b gauges},
    and magnitude-bucketed latency {b histograms} (nanoseconds). Handles
    are registered once (registration is idempotent — the same name
    yields the same handle) and updated on hot paths with a single
    guarded mutable write, so instrumentation costs nothing measurable
    when the registry is disabled and allocates nothing either way.

    The catalogue of metric names used by this repository is documented
    in [docs/OBSERVABILITY.md]. *)

type counter
type gauge
type histogram

type t
(** A registry. Most callers use the implicit {!default} registry; tests
    can create private ones. *)

val create : unit -> t
val default : t

val enabled : unit -> bool

val set_enabled : bool -> unit
(** Toggle the global sink. Disabled, every update ([incr], [add],
    [set], [observe]) is a no-op; handles stay registered and readable.
    Observability must never perturb semantics — disabling the sink
    changes no query result (tested in [test/test_obs.ml]). *)

val with_enabled : bool -> (unit -> 'a) -> 'a
(** Run with the sink forced on/off, restoring the previous state. *)

(** {1 Counters} — monotonic; negative deltas are ignored. *)

val counter : ?registry:t -> string -> counter
val incr : counter -> unit
val add : counter -> int -> unit
val value : counter -> int
val counter_name : counter -> string
val counter_value : ?registry:t -> string -> int
(** By name; 0 when the counter was never registered. *)

(** {1 Gauges} — settable levels. *)

val gauge : ?registry:t -> string -> gauge
val set : gauge -> int -> unit
val gauge_add : gauge -> int -> unit
val level : gauge -> int
val gauge_value : ?registry:t -> string -> int

(** {1 Histograms} — nanosecond latencies in 64 power-of-two buckets.
    The bucket counts always sum to the observation count. *)

val histogram : ?registry:t -> string -> histogram
val observe : histogram -> int -> unit
val observations : histogram -> int

val now_ns : unit -> int
(** Wall-clock nanoseconds (for intervals; the epoch is irrelevant). *)

val time : histogram -> (unit -> 'a) -> 'a
(** Run a thunk and observe its duration, exceptions included. *)

val bucket_of : int -> int
(** The bucket index a nanosecond value falls into (exposed for tests). *)

(** {1 Snapshots and rendering} *)

type hist_stats = {
  name : string;
  count : int;
  sum : int;
  min : int;  (** 0 when [count = 0] *)
  max : int;
  nonzero_buckets : (int * int) list;  (** (magnitude exponent, count) *)
}

type snapshot = {
  counters : (string * int) list;  (** sorted by name *)
  gauges : (string * int) list;
  histograms : hist_stats list;
}

val snapshot : ?registry:t -> unit -> snapshot

val reset : ?registry:t -> unit -> unit
(** Zero every instrument (handles remain valid). *)

val render_text : snapshot -> string
val json_of_snapshot : snapshot -> Jsonout.t
val render_json : snapshot -> string
(** The [STATS JSON;] wire format; schema in [docs/OBSERVABILITY.md]. *)
