(* A process-wide metrics registry: monotonic counters, gauges and
   latency histograms, identified by dotted names. Instrumented modules
   register their handles once at module-initialization time; the hot
   path of every operation is a single guarded update, so a disabled
   registry is a no-op sink that allocates nothing and perturbs nothing.

   Multicore: instrumented code runs on the writer event loop {e and} on
   reader domains (lib/exec), so every instrument must tolerate
   concurrent updates without losing structure. Counters are sharded
   into per-domain atomic cells (summed at read time) so reader domains
   do not contend on one cache line; gauges are a single atomic cell;
   histograms take a tiny per-histogram mutex (observations are
   per-frame, not per-tuple, so the lock is off every hot loop).
   Registration stays Hashtbl-based but is mutex-protected — in
   practice all registration happens at module init, before any domain
   spawns. *)

(* Cells are sharded by domain id; collisions just share a cell (the
   updates are atomic either way, nothing is lost). *)
let shards = 8

let slot () = (Domain.self () :> int) land (shards - 1)

type counter = { c_name : string; cells : int Atomic.t array }
type gauge = { g_name : string; g_cell : int Atomic.t }

(* Histograms bucket nanosecond latencies by magnitude: bucket [i] holds
   observations with [2^i <= ns < 2^(i+1)] (bucket 0 also takes <= 1ns).
   64 buckets cover every value an int can hold, so the bucket counts
   always conserve the total observation count — including under
   concurrent observers, because the mutex makes each observation's
   bucket increment and total increment one atomic step. *)
let bucket_count = 64

type histogram = {
  h_name : string;
  h_mu : Mutex.t;
  buckets : int array;
  mutable total : int;
  mutable sum_ns : int;
  mutable min_ns : int;
  mutable max_ns : int;
}

type t = {
  reg_mu : Mutex.t;
  counters : (string, counter) Hashtbl.t;
  gauges : (string, gauge) Hashtbl.t;
  histograms : (string, histogram) Hashtbl.t;
}

let create () =
  {
    reg_mu = Mutex.create ();
    counters = Hashtbl.create 32;
    gauges = Hashtbl.create 8;
    histograms = Hashtbl.create 8;
  }

let default = create ()

let enabled_flag = Atomic.make true
let enabled () = Atomic.get enabled_flag
let set_enabled b = Atomic.set enabled_flag b

let with_enabled b f =
  let saved = Atomic.get enabled_flag in
  Atomic.set enabled_flag b;
  Fun.protect ~finally:(fun () -> Atomic.set enabled_flag saved) f

(* ---- registration ----------------------------------------------------- *)

let registered mu tbl name make =
  Mutex.lock mu;
  let v =
    match Hashtbl.find_opt tbl name with
    | Some v -> v
    | None ->
      let v = make () in
      Hashtbl.replace tbl name v;
      v
  in
  Mutex.unlock mu;
  v

let counter ?(registry = default) name =
  registered registry.reg_mu registry.counters name (fun () ->
      { c_name = name; cells = Array.init shards (fun _ -> Atomic.make 0) })

let gauge ?(registry = default) name =
  registered registry.reg_mu registry.gauges name (fun () ->
      { g_name = name; g_cell = Atomic.make 0 })

let histogram ?(registry = default) name =
  registered registry.reg_mu registry.histograms name (fun () ->
      { h_name = name; h_mu = Mutex.create (); buckets = Array.make bucket_count 0;
        total = 0; sum_ns = 0; min_ns = max_int; max_ns = 0 })

(* ---- hot-path updates ------------------------------------------------- *)

let incr c = if Atomic.get enabled_flag then Atomic.incr c.cells.(slot ())

(* Counters are monotonic by construction: negative deltas are ignored. *)
let add c n =
  if Atomic.get enabled_flag && n > 0 then
    ignore (Atomic.fetch_and_add c.cells.(slot ()) n)

let value c = Array.fold_left (fun acc cell -> acc + Atomic.get cell) 0 c.cells
let counter_name c = c.c_name

let set g v = if Atomic.get enabled_flag then Atomic.set g.g_cell v

let gauge_add g d =
  if Atomic.get enabled_flag then ignore (Atomic.fetch_and_add g.g_cell d)

let level g = Atomic.get g.g_cell

let bucket_of ns =
  if ns <= 1 then 0
  else begin
    let i = ref 0 and v = ref ns in
    while !v > 1 do
      v := !v lsr 1;
      Stdlib.incr i
    done;
    min (bucket_count - 1) !i
  end

let observe h ns =
  if Atomic.get enabled_flag then begin
    let ns = max 0 ns in
    Mutex.lock h.h_mu;
    h.buckets.(bucket_of ns) <- h.buckets.(bucket_of ns) + 1;
    h.total <- h.total + 1;
    h.sum_ns <- h.sum_ns + ns;
    if ns < h.min_ns then h.min_ns <- ns;
    if ns > h.max_ns then h.max_ns <- ns;
    Mutex.unlock h.h_mu
  end

let observations h =
  Mutex.lock h.h_mu;
  let n = h.total in
  Mutex.unlock h.h_mu;
  n

(* ---- clock ------------------------------------------------------------ *)

let now_ns () = Int64.to_int (Int64.of_float (Unix.gettimeofday () *. 1e9))

let time h f =
  let t0 = now_ns () in
  Fun.protect ~finally:(fun () -> observe h (now_ns () - t0)) f

(* ---- lookup by name --------------------------------------------------- *)

let counter_value ?(registry = default) name =
  match Hashtbl.find_opt registry.counters name with Some c -> value c | None -> 0

let gauge_value ?(registry = default) name =
  match Hashtbl.find_opt registry.gauges name with Some g -> level g | None -> 0

(* ---- snapshots -------------------------------------------------------- *)

type hist_stats = {
  name : string;
  count : int;
  sum : int;
  min : int;  (** meaningless (0) when [count = 0] *)
  max : int;
  nonzero_buckets : (int * int) list;  (** (magnitude exponent, count) *)
}

type snapshot = {
  counters : (string * int) list;  (** sorted by name *)
  gauges : (string * int) list;
  histograms : hist_stats list;
}

let sorted_bindings tbl value =
  Hashtbl.fold (fun k v acc -> (k, value v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let hist_stats (h : histogram) =
  Mutex.lock h.h_mu;
  let nonzero = ref [] in
  for i = bucket_count - 1 downto 0 do
    if h.buckets.(i) > 0 then nonzero := (i, h.buckets.(i)) :: !nonzero
  done;
  let stats =
    {
      name = h.h_name;
      count = h.total;
      sum = h.sum_ns;
      min = (if h.total = 0 then 0 else h.min_ns);
      max = h.max_ns;
      nonzero_buckets = !nonzero;
    }
  in
  Mutex.unlock h.h_mu;
  stats

let snapshot ?(registry = default) () =
  {
    counters = sorted_bindings registry.counters value;
    gauges = sorted_bindings registry.gauges level;
    histograms =
      Hashtbl.fold (fun _ h acc -> hist_stats h :: acc) registry.histograms []
      |> List.sort (fun a b -> String.compare a.name b.name);
  }

let reset ?(registry = default) () =
  Hashtbl.iter
    (fun _ (c : counter) -> Array.iter (fun cell -> Atomic.set cell 0) c.cells)
    registry.counters;
  Hashtbl.iter (fun _ (g : gauge) -> Atomic.set g.g_cell 0) registry.gauges;
  Hashtbl.iter
    (fun _ (h : histogram) ->
      Mutex.lock h.h_mu;
      Array.fill h.buckets 0 bucket_count 0;
      h.total <- 0;
      h.sum_ns <- 0;
      h.min_ns <- max_int;
      h.max_ns <- 0;
      Mutex.unlock h.h_mu)
    registry.histograms

(* ---- rendering -------------------------------------------------------- *)

let ms ns = float_of_int ns /. 1e6

let render_text snap =
  let buf = Buffer.create 512 in
  if snap.counters <> [] then begin
    Buffer.add_string buf "counters:\n";
    List.iter
      (fun (name, v) -> Buffer.add_string buf (Printf.sprintf "  %-42s %d\n" name v))
      snap.counters
  end;
  if snap.gauges <> [] then begin
    Buffer.add_string buf "gauges:\n";
    List.iter
      (fun (name, v) -> Buffer.add_string buf (Printf.sprintf "  %-42s %d\n" name v))
      snap.gauges
  end;
  if snap.histograms <> [] then begin
    Buffer.add_string buf "histograms:\n";
    List.iter
      (fun h ->
        let mean = if h.count = 0 then 0. else ms h.sum /. float_of_int h.count in
        Buffer.add_string buf
          (Printf.sprintf "  %-42s count=%d mean=%.3fms min=%.3fms max=%.3fms\n" h.name
             h.count mean (ms h.min) (ms h.max)))
      snap.histograms
  end;
  if Buffer.length buf = 0 then "no metrics recorded\n" else Buffer.contents buf

let json_of_snapshot snap =
  let open Jsonout in
  Obj
    [
      ("schema_version", Int 1);
      ("counters", Obj (List.map (fun (k, v) -> (k, Int v)) snap.counters));
      ("gauges", Obj (List.map (fun (k, v) -> (k, Int v)) snap.gauges));
      ( "histograms",
        Obj
          (List.map
             (fun h ->
               ( h.name,
                 Obj
                   [
                     ("count", Int h.count);
                     ("sum_ns", Int h.sum);
                     ("min_ns", Int h.min);
                     ("max_ns", Int h.max);
                     ( "buckets",
                       List
                         (List.map
                            (fun (exp, n) -> List [ Int exp; Int n ])
                            h.nonzero_buckets) );
                   ] ))
             snap.histograms) );
    ]

let render_json snap = Jsonout.to_string (json_of_snapshot snap)
