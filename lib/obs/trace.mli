(** Structured trace spans — named, timed, nested intervals.

    Off by default: a disabled {!with_span} is exactly the thunk call.
    Enabled, finished root spans accumulate until {!take}. The recorder
    is single-threaded, matching the engine. Span names used by the
    repository are catalogued in [docs/OBSERVABILITY.md]. *)

type span

val enabled : unit -> bool
val set_enabled : bool -> unit

val reset : unit -> unit
(** Drop all open and completed spans. *)

val with_span : string -> (unit -> 'a) -> 'a
(** Run the thunk inside a new span (child of the innermost open span).
    The span is finished even if the thunk raises. *)

val note : string -> int -> unit
(** Attach a named measurement (e.g. ["rows"]) to the innermost open
    span; ignored when tracing is disabled or no span is open. *)

val take : unit -> span list
(** Completed root spans in completion order; clears the buffer. *)

val collect : (unit -> 'a) -> 'a * span list
(** Run a thunk with tracing forced on and return the root spans it
    completed, restoring the previous enabled state and pending roots. *)

val name : span -> string
val duration_ns : span -> int
val start_ns : span -> int
val stop_ns : span -> int
val children : span -> span list
val notes : span -> (string * int) list

val well_nested : span -> bool
(** Closed, children inside the parent interval, siblings in order,
    recursively. *)

val pp : ?indent:int -> Format.formatter -> span -> unit
