(* Structured trace spans: a named, timed interval with children. The
   recorder keeps a stack of open spans; [with_span] pushes, runs, pops
   and attaches the finished span either to its parent or to the list of
   completed roots. Tracing is off by default and a disabled [with_span]
   is exactly the thunk call — no allocation, no clock read.

   The recorder state is {e domain-local}: reader domains (lib/exec)
   evaluate queries concurrently with the writer, and a shared span
   stack would interleave their trees. Each domain traces into its own
   stack and completed list, so [collect] observes exactly the spans the
   calling domain opened. *)

type span = {
  name : string;
  start_ns : int;
  mutable stop_ns : int;  (* -1 while the span is open *)
  mutable children : span list;  (* reverse order while building *)
  mutable notes : (string * int) list;  (* named measurements, e.g. rows *)
}

let enabled_flag = Atomic.make false
let enabled () = Atomic.get enabled_flag
let set_enabled b = Atomic.set enabled_flag b

let stack_key : span list ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref [])

let completed_key : span list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref []) (* reverse order *)

let stack () = Domain.DLS.get stack_key
let completed () = Domain.DLS.get completed_key

let reset () =
  stack () := [];
  completed () := []

let finish span =
  span.stop_ns <- Metrics.now_ns ();
  span.children <- List.rev span.children;
  let stack = stack () in
  match !stack with
  | top :: rest when top == span ->
    stack := rest;
    (match !stack with
    | parent :: _ -> parent.children <- span :: parent.children
    | [] ->
      let completed = completed () in
      completed := span :: !completed)
  | _ ->
    (* an exception unwound past an enclosing span: drop the orphan
       rather than corrupt the tree *)
    ()

let with_span name f =
  if not (Atomic.get enabled_flag) then f ()
  else begin
    let span =
      { name; start_ns = Metrics.now_ns (); stop_ns = -1; children = []; notes = [] }
    in
    let stack = stack () in
    stack := span :: !stack;
    Fun.protect ~finally:(fun () -> finish span) f
  end

let note key v =
  if Atomic.get enabled_flag then
    match !(stack ()) with
    | span :: _ -> span.notes <- (key, v) :: span.notes
    | [] -> ()

let take () =
  let completed = completed () in
  let roots = List.rev !completed in
  completed := [];
  roots

let collect f =
  let saved = Atomic.get enabled_flag in
  Atomic.set enabled_flag true;
  let completed = completed () in
  let saved_completed = !completed in
  completed := [];
  let result =
    Fun.protect ~finally:(fun () -> Atomic.set enabled_flag saved) f
  in
  let spans = take () in
  completed := saved_completed;
  (result, spans)

let name s = s.name
let duration_ns s = if s.stop_ns < 0 then 0 else s.stop_ns - s.start_ns
let start_ns s = s.start_ns
let stop_ns s = s.stop_ns
let children s = s.children
let notes s = List.rev s.notes

(* A span is well-nested when it is closed, its children lie within its
   interval in order, and each child is itself well-nested. *)
let rec well_nested s =
  s.stop_ns >= s.start_ns
  && (let rec check lo = function
        | [] -> true
        | c :: rest ->
          c.start_ns >= lo && c.stop_ns <= s.stop_ns && well_nested c
          && check c.stop_ns rest
      in
      check s.start_ns s.children)

let rec pp ?(indent = 0) ppf s =
  Format.fprintf ppf "%s%s (%.3fms%s)@."
    (String.make (2 * indent) ' ')
    s.name
    (float_of_int (duration_ns s) /. 1e6)
    (String.concat ""
       (List.map (fun (k, v) -> Printf.sprintf ", %s=%d" k v) (notes s)));
  List.iter (pp ~indent:(indent + 1) ppf) s.children
