(* Parallel WAL apply: partition a burst of primary records into
   provably independent groups and evaluate the groups across OCaml 5
   domains.

   The static effect analysis (Hr_analysis.Footprint) supplies the
   safety argument, coarsened one step for this engine: each group
   evaluates against a private catalog snapshot and the coordinator
   installs whole changed relations afterwards, so two groups may not
   share ANY relation name — even provably disjoint cones within one
   relation would collide at install time (one group's installed
   version of the relation would erase the other's). Cone precision
   pays off in the lints and the shard router; here the grouping key is
   the footprint's relation set. Anything opaque (DDL, an unparseable
   record) is a hard barrier applied serially on the live catalog —
   exactly the sequential path — because DDL rewrites the hierarchies
   every cone and snapshot was resolved against.

   Domain-safety contract (docs/CONCURRENCY.md): the live catalog is
   frozen before any snapshot crosses a domain boundary, so the shared
   mutable hierarchies have no lazy closure builds left to race on;
   relations are immutable values. With [domains <= 1] no domain is
   ever spawned — processes that still need [Unix.fork] (the test
   suites, the smoke scripts) keep that freedom. *)

module Db = Hr_storage.Db
module Eval = Hr_query.Eval
module Footprint = Hr_analysis.Footprint
open Hierel

let m_batches = Hr_obs.Metrics.counter "repl.apply_batches"
let m_groups = Hr_obs.Metrics.counter "repl.apply_groups"
let m_parallel = Hr_obs.Metrics.counter "repl.apply_parallel_records"
let m_serial = Hr_obs.Metrics.counter "repl.apply_serial_records"
let g_domains = Hr_obs.Metrics.gauge "repl.apply_domains"

let set_domains_gauge k = Hr_obs.Metrics.set g_domains k

type record = { lsn : int; stmt : string }

type segment =
  | Serial of record list
      (** applied in order on the live catalog ([Db.apply_replicated]) *)
  | Parallel of record list list
      (** >= 2 groups, pairwise sharing no relation name *)

(* ---- partitioning ------------------------------------------------------ *)

module Sset = Set.Make (String)

(* Union-find by shared relation name, order-preserving within each
   group: a record joins every group it shares a relation with (merging
   them); records in one group keep their arrival order. *)
let group_run run =
  let groups =
    List.fold_left
      (fun groups (rels, record) ->
        let touching, free =
          List.partition (fun (s, _) -> not (Sset.disjoint s rels)) groups
        in
        let merged_set =
          List.fold_left (fun acc (s, _) -> Sset.union acc s) rels touching
        in
        let merged_records =
          List.concat_map (fun (_, rs) -> rs) touching @ [ record ]
        in
        free @ [ (merged_set, merged_records) ])
      [] run
  in
  List.map snd groups

let partition ~find records =
  let flush run acc =
    match group_run run with
    | [] -> acc
    | [ single ] -> Serial single :: acc
    | groups -> Parallel groups :: acc
  in
  let run, acc =
    List.fold_left
      (fun (run, acc) record ->
        match Footprint.of_source ~find record.stmt with
        | Footprint.Opaque _ -> ([], Serial [ record ] :: flush run acc)
        | Footprint.Atoms _ as fp -> (
          match Footprint.relations fp with
          | Some ((_ :: _) as rels) ->
            (run @ [ (Sset.of_list rels, record) ], acc)
          | Some [] | None -> ([], Serial [ record ] :: flush run acc)))
      ([], []) records
  in
  List.rev (flush run acc)

(* ---- application ------------------------------------------------------- *)

let apply_serial db records =
  let rec go = function
    | [] -> Ok ()
    | { lsn; stmt } :: rest -> (
      Hr_obs.Metrics.incr m_serial;
      match Db.apply_replicated db ~lsn stmt with
      | Ok () -> go rest
      | Error msg ->
        Error (Printf.sprintf "LSN %d (%S): %s" lsn stmt msg))
  in
  go records

(* Evaluate one group against a private snapshot of [base]; report the
   relations the group changed (new version, fresh definition, or
   drop), detected by physical inequality against the base binding. *)
let eval_group base records =
  let snap = Catalog.snapshot base in
  let rec go = function
    | [] ->
      let touched =
        List.sort_uniq String.compare
          (List.concat_map
             (fun { stmt; _ } ->
               match
                 Footprint.relations
                   (Footprint.of_source
                      ~find:(fun n -> Catalog.find_relation snap n)
                      stmt)
               with
               | Some rels -> rels
               | None -> [])
             records)
      in
      let changes =
        List.filter_map
          (fun name ->
            match
              (Catalog.find_relation snap name, Catalog.find_relation base name)
            with
            | Some r, Some r0 when r == r0 -> None
            | Some r, _ -> Some (name, Some r)
            | None, Some _ -> Some (name, None)
            | None, None -> None)
          touched
      in
      Ok changes
    | { lsn; stmt } :: rest -> (
      match Eval.run_script snap stmt with
      | Ok _ -> go rest
      | Error msg ->
        Error (Printf.sprintf "LSN %d (%S): %s" lsn stmt msg))
  in
  go records

let install base changes =
  List.iter
    (fun (name, change) ->
      match change with
      | Some r ->
        if Catalog.find_relation base name <> None then
          Catalog.replace_relation base r
          (* contents replayed from the primary were validated there *)
        else Catalog.define_relation ~check:false base r
      | None -> Catalog.drop_relation base name)
    changes

let apply_parallel ~domains db groups =
  let base = Db.catalog db in
  (* Seal the shared mutable hierarchies before any snapshot crosses a
     domain boundary (forces the lazy closure indexes, making every
     read path pure). *)
  Catalog.freeze base;
  let n_buckets = min domains (List.length groups) in
  let buckets = Array.make n_buckets [] in
  List.iteri
    (fun i g -> buckets.(i mod n_buckets) <- buckets.(i mod n_buckets) @ [ g ])
    groups;
  let worker bucket () = List.map (fun g -> eval_group base g) bucket in
  let handles =
    Array.map (fun bucket -> Domain.spawn (worker bucket)) buckets
  in
  let results = Array.to_list handles |> List.concat_map Domain.join in
  let rec collect acc = function
    | [] -> Ok (List.rev acc)
    | Ok changes :: rest -> collect (changes :: acc) rest
    | Error msg :: rest ->
      (* drain remaining results for the error report's determinism,
         but the first failure decides *)
      ignore rest;
      Error msg
  in
  match collect [] results with
  | Error _ as e -> e
  | Ok all_changes ->
    List.iter (install base) all_changes;
    List.iter (fun _ -> Hr_obs.Metrics.incr m_groups) groups;
    (* WAL bookkeeping in the primary's LSN order, preserving the local
       log's contiguity (fsck F007) independent of evaluation order. *)
    let records =
      List.sort
        (fun a b -> compare a.lsn b.lsn)
        (List.concat groups)
    in
    let rec log = function
      | [] -> Ok ()
      | { lsn; stmt } :: rest -> (
        Hr_obs.Metrics.incr m_parallel;
        match Db.log_replicated db ~lsn stmt with
        | Ok () -> log rest
        | Error msg -> Error (Printf.sprintf "LSN %d (%S): %s" lsn stmt msg))
    in
    log records

(* The batch entry point. [domains <= 1] (or a burst with nothing to
   parallelize) degenerates to exactly the sequential apply loop and
   never spawns a domain. *)
let apply_batch ~domains db records =
  if records = [] then Ok ()
  else begin
    Hr_obs.Metrics.incr m_batches;
    if domains <= 1 then apply_serial db records
    else begin
      let find n = Catalog.find_relation (Db.catalog db) n in
      let rec go = function
        | [] -> Ok ()
        | Serial rs :: rest -> (
          match apply_serial db rs with Ok () -> go rest | Error _ as e -> e)
        | Parallel groups :: rest -> (
          match apply_parallel ~domains db groups with
          | Ok () -> go rest
          | Error _ as e -> e)
      in
      (* re-partition lazily segment by segment? The footprints only
         feed name-level grouping, so resolving them against the
         pre-batch catalog is safe: a DDL inside the batch is opaque and
         already a barrier, and name sets do not depend on resolution. *)
      go (partition ~find records)
    end
  end
