(** A read-only replica: subscribes to a primary's logical WAL stream,
    applies it to its own durable {!Hr_storage.Db}, and serves read-only
    queries on its own port.

    One single-threaded [select] loop multiplexes three kinds of traffic
    — the upstream replication connection, the local listening socket,
    and local client connections — so the apply path and the read path
    share the catalog without locks. Protocol, LSN semantics and the
    failure matrix are specified in [docs/REPLICATION.md]; in short:

    - on (re)connect the replica sends [REPL_SUBSCRIBE] with its last
      {e durably applied} LSN (recovered from its own WAL), so a restart
      resumes exactly where it stopped;
    - a [REPL_SNAPSHOT] bootstrap replaces the local catalog wholesale
      (the primary sends one when its WAL no longer covers the
      requested offset);
    - each applied [REPL_RECORD] is logged locally under the primary's
      LSN before it is acknowledged, preserving the WAL discipline
      end-to-end;
    - a lost upstream connection is retried with exponential backoff
      ([backoff_min] doubling to [backoff_max]);
    - mutating scripts from local clients are refused with a clear
      error; reads, [LINT] and [STATS] are served normally.

    Statement replay is deterministic (same statements ⇒ same equivalent
    flat relations, exceptions and all), which is what makes logical
    shipping sufficient for convergence — tested byte-for-byte in
    [test/test_repl.ml]. *)

type config = {
  primary_host : string;
  primary_port : int;
  dir : string;  (** the replica's own database directory *)
  host : string;  (** local listen address *)
  port : int;  (** local listen port; 0 picks an ephemeral one *)
  backoff_min : float;  (** seconds; first retry delay *)
  backoff_max : float;  (** seconds; retry delay ceiling *)
  connect_timeout : float;  (** upstream TCP connect deadline *)
  checkpoint_every : int;
      (** checkpoint the local db whenever this many records have
          accumulated in its WAL (bounds recovery time) *)
  apply_domains : int;
      (** worker domains for the parallel WAL apply ({!Apply}); at the
          default 1 records apply sequentially and no OCaml 5 domain is
          ever spawned (so the process may still [Unix.fork]) *)
}

val config :
  ?primary_host:string ->
  ?host:string ->
  ?port:int ->
  ?backoff_min:float ->
  ?backoff_max:float ->
  ?connect_timeout:float ->
  ?checkpoint_every:int ->
  ?apply_domains:int ->
  primary_port:int ->
  dir:string ->
  unit ->
  config
(** Defaults: localhost both sides, ephemeral local port, backoff
    50ms → 2s, 5s connect timeout, checkpoint every 512 records,
    sequential apply ([apply_domains = 1]). *)

type t

val create : config -> t
(** Opens (or recovers) the local database and binds the local port.
    The first upstream connection attempt happens on the first
    {!step}. *)

val port : t -> int
(** The bound local port (useful with [port = 0]). *)

val applied_lsn : t -> int
(** The last durably applied LSN (the subscribe/resume offset). *)

val connected : t -> bool
(** Whether the upstream connection is currently established. *)

val db : t -> Hr_storage.Db.t
(** The replica's database (reads only — mutating it directly would
    diverge from the primary). *)

val step : t -> float -> unit
(** One event-loop iteration, waiting at most the given number of
    seconds: retries the upstream connection when its backoff deadline
    has passed, applies any received replication frames, and serves
    local clients. Raises [Failure] on divergence (a primary record
    that fails to apply locally). *)

val run : t -> unit
(** {!step} until the process dies; SIGPIPE is ignored. *)

val close : t -> unit
