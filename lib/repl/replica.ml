module Wire = Hr_frames.Wire
module Db = Hr_storage.Db
module Server = Hr_server.Server

(* Replica-side replication metrics (docs/OBSERVABILITY.md). The
   registry is process-wide, so on a replica these sit next to the
   server.* metrics of its local read-only endpoint. *)
let m_applied = Hr_obs.Metrics.counter "repl.records_applied"
let m_installed = Hr_obs.Metrics.counter "repl.snapshots_installed"
let m_connects = Hr_obs.Metrics.counter "repl.connects"
let m_reconnects = Hr_obs.Metrics.counter "repl.reconnects"
let g_applied = Hr_obs.Metrics.gauge "repl.applied_lsn"
let g_connected = Hr_obs.Metrics.gauge "repl.connected"

type config = {
  primary_host : string;
  primary_port : int;
  dir : string;
  host : string;
  port : int;
  backoff_min : float;
  backoff_max : float;
  connect_timeout : float;
  checkpoint_every : int;
  apply_domains : int;
}

let config ?(primary_host = "127.0.0.1") ?(host = "127.0.0.1") ?(port = 0)
    ?(backoff_min = 0.05) ?(backoff_max = 2.0) ?(connect_timeout = 5.0)
    ?(checkpoint_every = 512) ?(apply_domains = 1) ~primary_port ~dir () =
  {
    primary_host;
    primary_port;
    dir;
    host;
    port;
    backoff_min;
    backoff_max;
    connect_timeout;
    checkpoint_every;
    apply_domains;
  }

type upstream =
  | Down of { mutable until : float; mutable backoff : float }
  | Up of { fd : Unix.file_descr; dec : Wire.Decoder.t }

type t = {
  cfg : config;
  database : Db.t;
  server : Server.t;
  mutable upstream : upstream;
  mutable attempts : int;
  mutable connected_once : bool;  (* a later successful connect is a recovery *)
  mutable warned : bool;  (* one ERR-from-primary warning per outage *)
}

let create cfg =
  let database = Db.open_dir cfg.dir in
  let server =
    Server.create_for_db ~host:cfg.host ~read_only:true ~port:cfg.port ~db:database ()
  in
  Hr_obs.Metrics.set g_applied (Db.lsn database);
  Apply.set_domains_gauge cfg.apply_domains;
  {
    cfg;
    database;
    server;
    upstream = Down { until = 0.; backoff = cfg.backoff_min };
    attempts = 0;
    connected_once = false;
    warned = false;
  }

let port t = Server.port t.server
let applied_lsn t = Db.lsn t.database
let connected t = match t.upstream with Up _ -> true | Down _ -> false
let db t = t.database

let go_down t ~now ~backoff =
  (match t.upstream with
  | Up { fd; _ } -> ( try Unix.close fd with Unix.Unix_error _ -> ())
  | Down _ -> ());
  Hr_obs.Metrics.set g_connected 0;
  t.upstream <- Down { until = now +. backoff; backoff }

let try_connect t now =
  t.attempts <- t.attempts + 1;
  match
    Server.Client.connect ~host:t.cfg.primary_host ~timeout:t.cfg.connect_timeout
      ~port:t.cfg.primary_port ()
  with
  | conn ->
    let fd = Server.Client.fd conn in
    (try
       Wire.send fd Wire.repl_subscribe (Wire.lsn_payload (applied_lsn t));
       Hr_obs.Metrics.incr m_connects;
       if t.connected_once then Hr_obs.Metrics.incr m_reconnects;
       t.connected_once <- true;
       Hr_obs.Metrics.set g_connected 1;
       t.warned <- false;
       t.upstream <- Up { fd; dec = Wire.Decoder.create () }
     with Unix.Unix_error _ ->
       (try Unix.close fd with Unix.Unix_error _ -> ());
       t.upstream <- Down { until = now +. t.cfg.backoff_min; backoff = t.cfg.backoff_min })
  | exception (Failure _ | Unix.Unix_error _) ->
    (* double the delay this attempt already waited, up to the cap *)
    let backoff =
      match t.upstream with
      | Down d -> Float.min t.cfg.backoff_max (Float.max t.cfg.backoff_min (d.backoff *. 2.))
      | Up _ -> t.cfg.backoff_min
    in
    t.upstream <- Down { until = now +. backoff; backoff }

let maybe_checkpoint t =
  if t.cfg.checkpoint_every > 0 && Db.wal_records t.database >= t.cfg.checkpoint_every
  then Db.checkpoint t.database

(* Divergence — a record the primary logged and replayed cleanly fails
   here — means the two catalogs no longer agree and silently continuing
   would serve wrong answers. Fail loudly.

   Records are collected per decoder drain into a burst and flushed
   through {!Apply.apply_batch}: with [apply_domains > 1] the burst is
   partitioned into commuting groups applied across domains; at the
   default 1 the flush is exactly the historical record-by-record
   apply (and never spawns a domain). *)
let flush_burst t burst =
  match List.rev !burst with
  | [] -> ()
  | records ->
    burst := [];
    (match Apply.apply_batch ~domains:t.cfg.apply_domains t.database records with
    | Ok () -> ()
    | Error msg -> failwith ("replica diverged applying " ^ msg));
    Hr_obs.Metrics.add m_applied (List.length records);
    Hr_obs.Metrics.set g_applied (applied_lsn t);
    maybe_checkpoint t

let push_record t burst ~lsn stmt =
  let last =
    match !burst with
    | { Apply.lsn; _ } :: _ -> lsn
    | [] -> applied_lsn t
  in
  if lsn > last then burst := { Apply.lsn; stmt } :: !burst

let handle_frame t (tag, payload) =
  if tag = Wire.repl_snapshot then (
    match Wire.parse_lsn_prefixed payload with
    | Ok (lsn, image) -> (
      match Db.install_snapshot t.database ~lsn image with
      | Ok () ->
        Hr_obs.Metrics.incr m_installed;
        Hr_obs.Metrics.set g_applied lsn;
        true
      | Error msg -> failwith ("replica bootstrap failed: " ^ msg))
    | Error msg -> failwith ("malformed REPL_SNAPSHOT from primary: " ^ msg))
  else if tag = "ERR" then begin
    (* the primary refused the subscription (e.g. an in-memory server);
       keep retrying at the backoff ceiling, but say why once *)
    if not t.warned then begin
      t.warned <- true;
      Printf.eprintf "hrdb_replica: primary refused subscription: %s\n%!" payload
    end;
    raise Wire.Disconnected
  end
  else true (* ignore stray OK frames *)

let upstream_chunk = Bytes.create 65536

let service_upstream t fd dec =
  let now = Unix.gettimeofday () in
  match Unix.read fd upstream_chunk 0 (Bytes.length upstream_chunk) with
  | 0 -> go_down t ~now ~backoff:t.cfg.backoff_min
  | exception Unix.Unix_error (Unix.ECONNRESET, _, _) ->
    go_down t ~now ~backoff:t.cfg.backoff_min
  | n -> (
    Wire.Decoder.feed dec upstream_chunk n;
    let before = applied_lsn t in
    (* Burst collection: consecutive REPL_RECORD frames of one drain
       become one Apply batch; any other frame (or the end of the
       buffered input) flushes first, so a snapshot bootstrap never
       overtakes records already received. *)
    let burst = ref [] in
    let rec drain () =
      match Wire.Decoder.next dec with
      | Ok (Some (tag, payload)) when tag = Wire.repl_record -> (
        match Wire.parse_lsn_prefixed payload with
        | Ok (lsn, stmt) ->
          push_record t burst ~lsn stmt;
          drain ()
        | Error msg -> failwith ("malformed REPL_RECORD from primary: " ^ msg))
      | Ok (Some frame) ->
        flush_burst t burst;
        if handle_frame t frame then drain ()
      | Ok None -> flush_burst t burst
      | Error msg -> failwith ("malformed frame from primary: " ^ msg)
    in
    match drain () with
    | () ->
      (* One cumulative ack per shipped batch, and only after the whole
         batch is locally durable: the applies above buffer their WAL
         appends, so sync before telling the primary "applied through
         this LSN". *)
      if applied_lsn t > before then begin
        Db.sync t.database;
        try Wire.send fd Wire.repl_ack (Wire.lsn_payload (applied_lsn t))
        with Unix.Unix_error _ -> go_down t ~now ~backoff:t.cfg.backoff_min
      end
    | exception Wire.Disconnected ->
      (match t.upstream with
      | Down _ -> ()
      | Up _ ->
        let backoff =
          if t.warned then t.cfg.backoff_max else t.cfg.backoff_min
        in
        go_down t ~now ~backoff)
    | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
      go_down t ~now ~backoff:t.cfg.backoff_min)

let step t budget =
  let now = Unix.gettimeofday () in
  (match t.upstream with
  | Down d when now >= d.until -> try_connect t now
  | Down _ | Up _ -> ());
  let extra = match t.upstream with Up { fd; _ } -> [ fd ] | Down _ -> [] in
  let readable = Server.poll ~extra t.server budget in
  match t.upstream with
  | Up { fd; dec } when List.mem fd readable -> service_upstream t fd dec
  | Up _ | Down _ -> ()

let run t =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  while true do
    step t 0.25
  done

let close t =
  (match t.upstream with
  | Up { fd; _ } -> ( try Unix.close fd with Unix.Unix_error _ -> ())
  | Down _ -> ());
  Server.close t.server;
  Db.close t.database
