(** Parallel WAL apply: partition a burst of primary records into
    groups that provably share no relation (via the effect footprints
    of [Hr_analysis]) and evaluate the groups across OCaml 5 domains,
    each against a private catalog snapshot; the coordinator installs
    the changed relations and logs every record in the primary's LSN
    order. DDL and unparseable records are hard barriers, applied
    serially. Semantics and the soundness argument: docs/EFFECTS.md.

    With [domains <= 1] this is exactly the sequential
    {!Hr_storage.Db.apply_replicated} loop and no domain is ever
    spawned — callers that still need [Unix.fork] keep that freedom. *)

type record = { lsn : int; stmt : string }

type segment =
  | Serial of record list
      (** applied in order on the live catalog *)
  | Parallel of record list list
      (** >= 2 groups, pairwise sharing no relation name *)

val partition :
  find:(string -> Hierel.Relation.t option) -> record list -> segment list
(** Exposed for tests: the grouping is what the soundness harness
    exercises directly. Record order is preserved within every group
    and across segment boundaries. *)

val apply_batch :
  domains:int -> Hr_storage.Db.t -> record list -> (unit, string) result
(** Apply one burst. [Error] means divergence (some record failed to
    evaluate) and the caller should treat it as fatal; on error the
    batch may be partially applied, exactly like the sequential path.
    WAL appends are buffered — the caller must {!Hr_storage.Db.sync}
    before acknowledging upstream. *)

val set_domains_gauge : int -> unit
(** Publish the configured worker count as [repl.apply_domains]. *)
