(* The single writer's side of snapshot isolation: after each group
   commit it seals the live catalog and swings one atomic root to a new
   {!Version.t}. Readers pin [current] with a single [Atomic.get] — no
   lock, no reference counting; versions no longer pinned are simply
   collected by the GC.

   The safe publish order is load-bearing:

   1. [Catalog.freeze] — every hierarchy's memo caches are fully
      populated and sealed, so every read path on the snapshot is pure;
   2. [Catalog.snapshot] — O(1) capture of the map roots; the writer's
      later rebinds cannot reach it;
   3. [Atomic.set] — the version becomes visible, tagged with the LSN
      the caller proved durable ([Db.synced_lsn] at the commit point).

   [~unsafe_publish:true] is a deliberately seeded isolation bug for
   the concurrency harness (test/test_mc.ml): it skips steps 1-2 and
   publishes the {e live} catalog object, so readers observe the
   writer's in-progress mutations under a stale LSN tag. The harness
   must detect the resulting oracle mismatches; production code paths
   never set it. *)

type t = {
  current : Version.t Atomic.t;
  unsafe : bool;
  published : Hr_obs.Metrics.counter;
  version_id : Hr_obs.Metrics.gauge;
}

let seal cat =
  Hierel.Catalog.freeze cat;
  Hierel.Catalog.snapshot cat

let create ?(unsafe_publish = false) ~lsn cat =
  let catalog = if unsafe_publish then cat else seal cat in
  {
    current = Atomic.make { Version.id = 1; lsn; catalog };
    unsafe = unsafe_publish;
    published = Hr_obs.Metrics.counter "exec.published_versions";
    version_id = Hr_obs.Metrics.gauge "exec.version_id";
  }

let current t = Atomic.get t.current
let unsafe t = t.unsafe

(* Publish [cat] as the new current version iff it differs from what is
   already published (new bindings, or a higher durable LSN). Returns
   the now-current version either way. Single-writer: only the event
   loop calls this, so read-modify-write without CAS is fine. *)
let publish t ~lsn cat =
  let prev = Atomic.get t.current in
  if lsn = prev.Version.lsn && Hierel.Catalog.same_bindings cat prev.Version.catalog then prev
  else begin
    let catalog = if t.unsafe then cat else seal cat in
    let v = { Version.id = prev.Version.id + 1; lsn; catalog } in
    Atomic.set t.current v;
    Hr_obs.Metrics.incr t.published;
    Hr_obs.Metrics.set t.version_id v.Version.id;
    v
  end
