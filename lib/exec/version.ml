(* One published catalog version: an immutable snapshot tagged with a
   monotone id and the WAL LSN it is consistent through. A reader pins
   a version for the duration of one query and evaluates against its
   [catalog] without any lock — the publisher guarantees the catalog is
   frozen (every read path pure) and that [lsn] never exceeds the
   database's synced LSN (visibility never outruns durability). *)

type t = {
  id : int;  (** monotone per publisher, 1 at startup *)
  lsn : int;  (** the version reflects exactly WAL records 1..lsn *)
  catalog : Hierel.Catalog.t;
}
