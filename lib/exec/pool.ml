(* A fixed pool of OCaml 5 reader domains behind a Mutex+Condition job
   queue. The server's event loop [submit]s read-only frames as thunks
   (each thunk pins a published {!Version.t} when it starts executing);
   workers push results onto a completion list and write one byte to a
   self-pipe so the event loop's [select] wakes immediately. The event
   loop then [drain]s completions and routes each reply to the
   connection that owns it.

   The queue is deliberately simple: reads are independent, ordering is
   reimposed per connection by the server's reply slots, and the single
   writer never enters the pool — so a plain FIFO protected by one
   mutex is contention-free enough (the lock is held for a push/pop,
   never during query evaluation). *)

type completion = {
  c_key : int;  (** the token [submit] returned *)
  c_tag : string;  (** reply frame tag, e.g. ["OKV"] / ["ERR"] *)
  c_payload : string;
}

type job = { j_key : int; j_submitted_ns : int; j_run : unit -> string * string }

type t = {
  mu : Mutex.t;
  cond : Condition.t;
  jobs : job Queue.t;
  mutable completed : completion list;  (* newest first; drained by the event loop *)
  mutable stopping : bool;
  mutable next_key : int;
  notify_r : Unix.file_descr;
  notify_w : Unix.file_descr;
  mutable workers : unit Domain.t array;
  m_offloaded : Hr_obs.Metrics.counter;
  m_completed : Hr_obs.Metrics.counter;
  m_failed : Hr_obs.Metrics.counter;
  m_queue_depth : Hr_obs.Metrics.histogram;
  m_handoff : Hr_obs.Metrics.histogram;
}

let notify t =
  (* Best effort: the pipe is non-blocking, and a full pipe already
     guarantees a pending wakeup. *)
  try ignore (Unix.write t.notify_w (Bytes.make 1 '!') 0 1) with
  | Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EPIPE), _, _) -> ()

let rec worker_loop t =
  Mutex.lock t.mu;
  while Queue.is_empty t.jobs && not t.stopping do
    Condition.wait t.cond t.mu
  done;
  if Queue.is_empty t.jobs then Mutex.unlock t.mu (* stopping *)
  else begin
    let job = Queue.pop t.jobs in
    Mutex.unlock t.mu;
    Hr_obs.Metrics.observe t.m_handoff (Hr_obs.Metrics.now_ns () - job.j_submitted_ns);
    let tag, payload =
      try job.j_run ()
      with exn ->
        Hr_obs.Metrics.incr t.m_failed;
        ("ERR", Printexc.to_string exn)
    in
    Mutex.lock t.mu;
    t.completed <- { c_key = job.j_key; c_tag = tag; c_payload = payload } :: t.completed;
    Mutex.unlock t.mu;
    Hr_obs.Metrics.incr t.m_completed;
    notify t;
    worker_loop t
  end

let create ~domains =
  if domains < 1 then invalid_arg "Pool.create: domains must be >= 1";
  let notify_r, notify_w = Unix.pipe ~cloexec:true () in
  Unix.set_nonblock notify_r;
  Unix.set_nonblock notify_w;
  let t =
    {
      mu = Mutex.create ();
      cond = Condition.create ();
      jobs = Queue.create ();
      completed = [];
      stopping = false;
      next_key = 0;
      notify_r;
      notify_w;
      workers = [||];
      m_offloaded = Hr_obs.Metrics.counter "exec.jobs_offloaded";
      m_completed = Hr_obs.Metrics.counter "exec.jobs_completed";
      m_failed = Hr_obs.Metrics.counter "exec.jobs_failed";
      m_queue_depth = Hr_obs.Metrics.histogram "exec.queue_depth";
      m_handoff = Hr_obs.Metrics.histogram "exec.handoff_ns";
    }
  in
  Hr_obs.Metrics.set (Hr_obs.Metrics.gauge "exec.reader_domains") domains;
  t.workers <- Array.init domains (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let size t = Array.length t.workers

let notify_fd t = t.notify_r

(* Enqueue [run]; returns the key its completion will carry. [run]
   executes on some reader domain and must be self-contained: it pins
   its own version and touches no event-loop state. *)
let submit t run =
  Mutex.lock t.mu;
  let key = t.next_key in
  t.next_key <- key + 1;
  Queue.push { j_key = key; j_submitted_ns = Hr_obs.Metrics.now_ns (); j_run = run } t.jobs;
  let depth = Queue.length t.jobs in
  Condition.signal t.cond;
  Mutex.unlock t.mu;
  Hr_obs.Metrics.incr t.m_offloaded;
  Hr_obs.Metrics.observe t.m_queue_depth depth;
  key

(* All completions accumulated since the last drain, oldest first.
   Also clears the self-pipe. *)
let drain t =
  (let buf = Bytes.create 64 in
   let rec clear () =
     match Unix.read t.notify_r buf 0 64 with
     | 0 -> ()
     | _ -> clear ()
     | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) -> ()
   in
   clear ());
  Mutex.lock t.mu;
  let l = t.completed in
  t.completed <- [];
  Mutex.unlock t.mu;
  List.rev l

let shutdown t =
  Mutex.lock t.mu;
  t.stopping <- true;
  Condition.broadcast t.cond;
  Mutex.unlock t.mu;
  Array.iter Domain.join t.workers;
  (try Unix.close t.notify_r with Unix.Unix_error _ -> ());
  try Unix.close t.notify_w with Unix.Unix_error _ -> ()
