open Hierel

let m_connections = Hr_obs.Metrics.counter "server.connections"
let m_frames = Hr_obs.Metrics.counter "server.frames_served"
let m_errors = Hr_obs.Metrics.counter "server.frame_errors"
let h_frame = Hr_obs.Metrics.histogram "server.frame_ns"

type backend = Memory of Catalog.t | Durable of Hr_storage.Db.t

type t = { socket : Unix.file_descr; backend : backend; bound_port : int }

let listen_on host port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
  Unix.listen fd 8;
  let bound_port =
    match Unix.getsockname fd with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> assert false
  in
  (fd, bound_port)

let create_memory ?(host = "127.0.0.1") ~port () =
  let socket, bound_port = listen_on host port in
  { socket; backend = Memory (Catalog.create ()); bound_port }

let create_durable ?(host = "127.0.0.1") ~port ~dir () =
  let socket, bound_port = listen_on host port in
  { socket; backend = Durable (Hr_storage.Db.open_dir dir); bound_port }

let port t = t.bound_port

let run_script t script =
  match t.backend with
  | Memory cat -> Hr_query.Eval.run_script cat script
  | Durable db -> Hr_storage.Db.exec db script

let catalog t =
  match t.backend with
  | Memory cat -> cat
  | Durable db -> Hr_storage.Db.catalog db

let lint t script =
  Hr_analysis.Lint.analyze_script ~catalog:(catalog t) script

(* ---- framing --------------------------------------------------------- *)

exception Disconnected

let read_line_fd fd =
  let buf = Buffer.create 64 in
  let byte = Bytes.make 1 ' ' in
  let rec loop () =
    match Unix.read fd byte 0 1 with
    | 0 -> if Buffer.length buf = 0 then raise Disconnected else Buffer.contents buf
    | _ ->
      let c = Bytes.get byte 0 in
      if c = '\n' then Buffer.contents buf
      else begin
        Buffer.add_char buf c;
        loop ()
      end
  in
  loop ()

let read_exact fd n =
  let data = Bytes.make n '\000' in
  let rec fill off =
    if off < n then begin
      let r = Unix.read fd data (off) (n - off) in
      if r = 0 then raise Disconnected;
      fill (off + r)
    end
  in
  fill 0;
  Bytes.to_string data

let write_all fd s =
  let len = String.length s in
  let rec push off =
    if off < len then push (off + Unix.write_substring fd s off (len - off))
  in
  push 0

let send_frame fd tag payload =
  write_all fd (Printf.sprintf "%s %d\n%s" tag (String.length payload) payload)

let recv_frame fd =
  let header = read_line_fd fd in
  match String.index_opt header ' ' with
  | None -> Error (Printf.sprintf "malformed frame header %S" header)
  | Some i -> (
    let tag = String.sub header 0 i in
    match int_of_string_opt (String.sub header (i + 1) (String.length header - i - 1)) with
    | None -> Error (Printf.sprintf "malformed frame length in %S" header)
    | Some len when len < 0 || len > 16 * 1024 * 1024 ->
      Error (Printf.sprintf "unreasonable frame length %d" len)
    | Some len -> Ok (tag, read_exact fd len))

(* ---- serving ---------------------------------------------------------- *)

let handle_request t conn payload =
  match run_script t payload with
  | Ok outputs -> send_frame conn "OK" (String.concat "\n" outputs)
  | Error msg -> send_frame conn "ERR" msg

let serve_one_connection t =
  let conn, _ = Unix.accept t.socket in
  Hr_obs.Metrics.incr m_connections;
  Fun.protect
    ~finally:(fun () -> try Unix.close conn with Unix.Unix_error _ -> ())
    (fun () ->
      let rec loop () =
        match recv_frame conn with
        | Ok (tag, payload) ->
          Hr_obs.Metrics.incr m_frames;
          Hr_obs.Metrics.time h_frame (fun () ->
              match tag with
              | "EXEC" -> handle_request t conn payload
              | "LINT" ->
                send_frame conn "OK" (Hr_analysis.Diagnostic.render_json (lint t payload))
              | "STATS" ->
                (* payload selects the rendering: "json" or "" for text *)
                let snap = Hr_obs.Metrics.snapshot () in
                let body =
                  if String.lowercase_ascii (String.trim payload) = "json" then
                    Hr_obs.Metrics.render_json snap
                  else Hr_obs.Metrics.render_text snap
                in
                send_frame conn "OK" body
              | _ ->
                Hr_obs.Metrics.incr m_errors;
                send_frame conn "ERR" (Printf.sprintf "unknown request %S" tag));
          loop ()
        | Error msg ->
          Hr_obs.Metrics.incr m_errors;
          send_frame conn "ERR" msg;
          loop ()
        | exception Disconnected -> ()
      in
      loop ())

let serve_forever t =
  while true do
    serve_one_connection t
  done

let close t =
  (try Unix.close t.socket with Unix.Unix_error _ -> ());
  match t.backend with Durable db -> Hr_storage.Db.close db | Memory _ -> ()

module Client = struct
  type conn = Unix.file_descr

  let connect ?(host = "127.0.0.1") ~port () =
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
    fd

  let request conn tag script =
    send_frame conn tag script;
    match recv_frame conn with
    | Ok ("OK", payload) -> Ok payload
    | Ok ("ERR", payload) -> Error payload
    | Ok (tag, _) -> Error (Printf.sprintf "unexpected reply %S" tag)
    | Error msg -> Error msg
    | exception Disconnected -> Error "server disconnected"

  let exec conn script = request conn "EXEC" script
  let lint conn script = request conn "LINT" script
  let stats ?(json = false) conn = request conn "STATS" (if json then "json" else "")

  let send conn tag payload = send_frame conn tag payload

  let shutdown_send conn =
    try Unix.shutdown conn Unix.SHUTDOWN_SEND with Unix.Unix_error _ -> ()

  let recv conn =
    match recv_frame conn with
    | Ok ("OK", payload) -> Ok payload
    | Ok ("ERR", payload) -> Error payload
    | Ok (tag, _) -> Error (Printf.sprintf "unexpected reply %S" tag)
    | Error msg -> Error msg
    | exception Disconnected -> Error "server disconnected"

  let close conn = try Unix.close conn with Unix.Unix_error _ -> ()
end
