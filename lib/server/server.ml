open Hierel
module Wire = Hr_frames.Wire

let m_connections = Hr_obs.Metrics.counter "server.connections"
let m_frames = Hr_obs.Metrics.counter "server.frames_served"
let m_errors = Hr_obs.Metrics.counter "server.frame_errors"
let h_frame = Hr_obs.Metrics.histogram "server.frame_ns"

(* Primary-side replication metrics (docs/OBSERVABILITY.md). [repl.lag]
   is the LSN delta between the primary and the last acknowledged offset
   — 0 means the acking replica was caught up at that moment. *)
let m_shipped = Hr_obs.Metrics.counter "repl.records_shipped"
let m_bootstraps = Hr_obs.Metrics.counter "repl.snapshot_bootstraps"
let m_acks = Hr_obs.Metrics.counter "repl.acks"
let m_backlog_drops = Hr_obs.Metrics.counter "repl.backlog_drops"
let g_lag = Hr_obs.Metrics.gauge "repl.lag"
let g_subscribers = Hr_obs.Metrics.gauge "repl.subscribers"

type backend = Memory of Catalog.t | Durable of Hr_storage.Db.t

type conn = {
  fd : Unix.file_descr;
  dec : Wire.Decoder.t;
  mutable subscribed : bool;
  mutable sent_lsn : int;
  (* Outgoing bytes not yet accepted by the kernel, in
     [out.[out_start .. out_start+out_len)]. Event-loop connections are
     non-blocking: a frame is appended here and written opportunistically;
     the remainder drains when [poll]'s select reports the fd writable.
     This keeps one stalled subscriber from blocking the loop (and every
     other client) on a full socket buffer. *)
  mutable out : Bytes.t;
  mutable out_start : int;
  mutable out_len : int;
}

type t = {
  socket : Unix.file_descr;
  backend : backend;
  bound_port : int;
  read_only : bool;
  owns_db : bool;
  max_backlog : int;
  mutable conns : conn list;
}

let listen_on host port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
  Unix.listen fd 8;
  let bound_port =
    match Unix.getsockname fd with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> assert false
  in
  (fd, bound_port)

(* A backlog bound below one max frame could never ship a snapshot
   bootstrap, so the default is one full frame plus slack. *)
let default_max_backlog = Wire.max_frame + (4 * 1024 * 1024)

let make ?(host = "127.0.0.1") ?(read_only = false) ?(max_backlog = default_max_backlog)
    ~port ~owns_db backend =
  let socket, bound_port = listen_on host port in
  { socket; backend; bound_port; read_only; owns_db; max_backlog; conns = [] }

let create_memory ?host ?read_only ?max_backlog ~port () =
  make ?host ?read_only ?max_backlog ~port ~owns_db:true (Memory (Catalog.create ()))

let create_durable ?host ?read_only ?max_backlog ~port ~dir () =
  make ?host ?read_only ?max_backlog ~port ~owns_db:true
    (Durable (Hr_storage.Db.open_dir dir))

let create_for_db ?host ?read_only ?max_backlog ~port ~db () =
  make ?host ?read_only ?max_backlog ~port ~owns_db:false (Durable db)

let port t = t.bound_port

let run_script t script =
  match t.backend with
  | Memory cat -> Hr_query.Eval.run_script cat script
  | Durable db -> Hr_storage.Db.exec db script

let catalog t =
  match t.backend with
  | Memory cat -> cat
  | Durable db -> Hr_storage.Db.catalog db

let lint t script =
  Hr_analysis.Lint.analyze_script ~catalog:(catalog t) script

(* ---- serving ---------------------------------------------------------- *)

exception Drop_conn

let subscriber_count t =
  List.length (List.filter (fun c -> c.subscribed) t.conns)

(* ---- buffered, non-blocking output ------------------------------------ *)

let out_append conn s =
  let n = String.length s in
  if conn.out_start + conn.out_len + n > Bytes.length conn.out then begin
    let cap = ref (max 1024 (Bytes.length conn.out)) in
    while !cap < conn.out_len + n do
      cap := !cap * 2
    done;
    let dst = if !cap <= Bytes.length conn.out then conn.out else Bytes.create !cap in
    (* Bytes.blit handles the overlapping in-place compaction case *)
    Bytes.blit conn.out conn.out_start dst 0 conn.out_len;
    conn.out <- dst;
    conn.out_start <- 0
  end;
  Bytes.blit_string s 0 conn.out (conn.out_start + conn.out_len) n;
  conn.out_len <- conn.out_len + n

(* Write as much pending output as the kernel will take right now.
   Event-loop fds are non-blocking, so this never stalls; on a blocking
   fd (the sequential path) it completes the whole buffer. Hard socket
   errors (EPIPE, ECONNRESET, ...) propagate to the caller. *)
let out_drain conn =
  let rec push () =
    if conn.out_len > 0 then
      match Unix.write conn.fd conn.out conn.out_start conn.out_len with
      | 0 -> ()
      | n ->
        conn.out_start <- conn.out_start + n;
        conn.out_len <- conn.out_len - n;
        push ()
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
        ->
        ()
  in
  push ();
  if conn.out_len = 0 then begin
    conn.out_start <- 0;
    (* after a burst (e.g. a snapshot bootstrap), stop holding the peak *)
    if Bytes.length conn.out > 1024 * 1024 then conn.out <- Bytes.create 1024
  end

(* Every event-loop reply and replication push goes through here so a
   slow peer accumulates backlog instead of wedging the loop. A peer
   whose backlog exceeds the bound is cut off — a replica will reconnect
   and resume from its durable offset (snapshot-bootstrapping if it fell
   too far behind). *)
let send_conn t conn tag payload =
  out_append conn (Wire.frame tag payload);
  out_drain conn;
  if conn.out_len > t.max_backlog then begin
    Hr_obs.Metrics.incr m_backlog_drops;
    raise Drop_conn
  end

(* Ship every logged record past the subscriber's offset. Raises on a
   vanished or hopelessly backlogged peer; the caller drops the
   connection. *)
let ship t db conn =
  List.iter
    (fun { Hr_storage.Wal.lsn; stmt } ->
      send_conn t conn Wire.repl_record (Wire.lsn_prefixed lsn stmt);
      conn.sent_lsn <- lsn;
      Hr_obs.Metrics.incr m_shipped)
    (Hr_storage.Db.records_since db conn.sent_lsn)

(* After a committed script, push the new records to every subscriber.
   A subscriber whose connection broke is silently forgotten — it will
   reconnect and resume from its durable offset. *)
let ship_all t =
  match t.backend with
  | Memory _ -> ()
  | Durable db ->
    let dead = ref [] in
    List.iter
      (fun c ->
        if c.subscribed then
          try ship t db c
          with Unix.Unix_error _ | Wire.Disconnected | Drop_conn -> dead := c :: !dead)
      t.conns;
    List.iter
      (fun c ->
        (try Unix.close c.fd with Unix.Unix_error _ -> ());
        t.conns <- List.filter (fun c' -> c' != c) t.conns)
      !dead;
    if !dead <> [] then Hr_obs.Metrics.set g_subscribers (subscriber_count t)

let handle t conn tag payload =
  match tag with
  | "EXEC" -> (
    match (if t.read_only then Hr_storage.Db.script_mutation payload else None) with
    | Some src ->
      send_conn t conn "ERR"
        (Printf.sprintf "read-only replica: refusing mutating statement %S (execute it on the primary)" src)
    | None -> (
      match run_script t payload with
      | Ok outputs ->
        send_conn t conn "OK" (String.concat "\n" outputs);
        ship_all t
      | Error msg -> send_conn t conn "ERR" msg))
  | "LINT" ->
    send_conn t conn "OK" (Hr_analysis.Diagnostic.render_json (lint t payload))
  | "STATS" ->
    (* payload selects the rendering: "json" or "" for text *)
    let snap = Hr_obs.Metrics.snapshot () in
    let body =
      if String.lowercase_ascii (String.trim payload) = "json" then
        Hr_obs.Metrics.render_json snap
      else Hr_obs.Metrics.render_text snap
    in
    send_conn t conn "OK" body
  | "FSCK" -> (
    (* offline-style verification of the durable directory, served from
       the running primary: read-only, never takes the lock, and runs
       inside the single-threaded loop so no checkpoint races it *)
    match t.backend with
    | Memory _ ->
      Hr_obs.Metrics.incr m_errors;
      send_conn t conn "ERR" "fsck requires a durable backend (start with -d DIR)"
    | Durable db ->
      let report = Hr_check.Fsck.run (Hr_storage.Db.dir db) in
      let body =
        if String.lowercase_ascii (String.trim payload) = "json" then
          Hr_check.Fsck.render_json report
        else Hr_check.Fsck.render_text report
      in
      send_conn t conn "OK" body)
  | tag when tag = Wire.repl_subscribe -> (
    match t.backend with
    | Memory _ ->
      Hr_obs.Metrics.incr m_errors;
      send_conn t conn "ERR" "replication requires a durable primary (start with -d DIR)"
    | Durable db -> (
      match Wire.parse_lsn payload with
      | Error msg ->
        Hr_obs.Metrics.incr m_errors;
        send_conn t conn "ERR" msg
      | Ok lsn ->
        let base = Hr_storage.Db.base_lsn db in
        conn.subscribed <- true;
        Hr_obs.Metrics.set g_subscribers (subscriber_count t);
        conn.sent_lsn <-
          (if lsn < base then begin
             (* The WAL no longer covers the requested offset: bootstrap
                with an image of the live catalog. The image is encoded
                at the current head LSN (the loop is single-threaded, so
                it is consistent), and the stream resumes after it. *)
             let head = Hr_storage.Db.lsn db in
             send_conn t conn Wire.repl_snapshot
               (Wire.lsn_prefixed head (Hr_storage.Db.snapshot_image db));
             Hr_obs.Metrics.incr m_bootstraps;
             head
           end
           else lsn);
        ship t db conn))
  | tag when tag = Wire.repl_ack -> (
    match Wire.parse_lsn payload with
    | Error msg ->
      Hr_obs.Metrics.incr m_errors;
      send_conn t conn "ERR" msg
    | Ok lsn ->
      Hr_obs.Metrics.incr m_acks;
      (match t.backend with
      | Durable db -> Hr_obs.Metrics.set g_lag (Hr_storage.Db.lsn db - lsn)
      | Memory _ -> ()))
  | _ ->
    Hr_obs.Metrics.incr m_errors;
    send_conn t conn "ERR" (Printf.sprintf "unknown request %S" tag)

let new_conn fd =
  {
    fd;
    dec = Wire.Decoder.create ();
    subscribed = false;
    sent_lsn = 0;
    out = Bytes.create 1024;
    out_start = 0;
    out_len = 0;
  }

let drop_conn t conn =
  (try Unix.close conn.fd with Unix.Unix_error _ -> ());
  t.conns <- List.filter (fun c -> c != conn) t.conns;
  if conn.subscribed then Hr_obs.Metrics.set g_subscribers (subscriber_count t)

let handle_timed t conn tag payload =
  Hr_obs.Metrics.incr m_frames;
  Hr_obs.Metrics.time h_frame (fun () -> handle t conn tag payload)

(* Drain every complete frame the decoder holds. A malformed header is
   unrecoverable (framing is lost): reply once and drop. *)
let drain_frames t conn =
  let rec loop () =
    match Wire.Decoder.next conn.dec with
    | Ok (Some (tag, payload)) ->
      handle_timed t conn tag payload;
      loop ()
    | Ok None -> ()
    | Error msg ->
      Hr_obs.Metrics.incr m_errors;
      (try send_conn t conn "ERR" msg with Unix.Unix_error _ | Drop_conn -> ());
      raise Drop_conn
  in
  loop ()

let chunk = Bytes.create 65536

let service t conn =
  match Unix.read conn.fd chunk 0 (Bytes.length chunk) with
  | 0 -> drop_conn t conn
  | n -> (
    Wire.Decoder.feed conn.dec chunk n;
    try drain_frames t conn
    with
    | Drop_conn | Wire.Disconnected -> drop_conn t conn
    | Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) -> drop_conn t conn
    | exn ->
      (* Last line of defense: a handler bug (an uncaught lexer error,
         say) must take down this connection, not the event loop and
         every other client with it. *)
      Hr_obs.Metrics.incr m_errors;
      Printf.eprintf "hrdb: dropping connection after handler error: %s\n%!"
        (Printexc.to_string exn);
      (try send_conn t conn "ERR" ("internal error: " ^ Printexc.to_string exn)
       with Unix.Unix_error _ | Drop_conn -> ());
      drop_conn t conn)
  | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> drop_conn t conn
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()

let accept_conn t =
  match Unix.accept t.socket with
  | fd, _ ->
    Hr_obs.Metrics.incr m_connections;
    (* event-loop connections are non-blocking so buffered writes (and
       stray reads) can never stall the loop *)
    Unix.set_nonblock fd;
    t.conns <- new_conn fd :: t.conns
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()

(* Push a connection's buffered output now that select says it fits. *)
let flush_conn t conn =
  try out_drain conn
  with Unix.Unix_error _ -> drop_conn t conn

let poll ?(extra = []) t timeout =
  let fds = (t.socket :: List.map (fun c -> c.fd) t.conns) @ extra in
  let wfds = List.filter_map (fun c -> if c.out_len > 0 then Some c.fd else None) t.conns in
  match Unix.select fds wfds [] timeout with
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> []
  | readable, writable, _ ->
    if List.mem t.socket readable then accept_conn t;
    (* service over a copy: handlers mutate [t.conns] *)
    List.iter
      (fun c -> if List.mem c.fd writable && List.memq c t.conns then flush_conn t c)
      t.conns;
    List.iter
      (fun c -> if List.mem c.fd readable && List.memq c t.conns then service t c)
      t.conns;
    List.filter (fun fd -> List.mem fd readable) extra

let serve_forever t =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  while true do
    ignore (poll t 0.5)
  done

(* The historical sequential path: one client at a time, blocking reads.
   The connection still joins [t.conns] so replication pushes reach a
   subscriber that pipelines EXECs on its own connection. *)
let serve_one_connection t =
  let fd, _ = Unix.accept t.socket in
  Hr_obs.Metrics.incr m_connections;
  let conn = new_conn fd in
  t.conns <- conn :: t.conns;
  Fun.protect
    ~finally:(fun () -> if List.memq conn t.conns then drop_conn t conn)
    (fun () ->
      let rec loop () =
        match Wire.recv fd with
        | Ok (tag, payload) -> (
          match handle_timed t conn tag payload with
          | () -> loop ()
          | exception Drop_conn -> ()
          | exception Wire.Disconnected -> ()
          | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) -> ()
          | exception exn ->
            (* mirror the event loop: a handler bug answers ERR and keeps
               serving rather than killing the connection loop *)
            Hr_obs.Metrics.incr m_errors;
            (try Wire.send fd "ERR" ("internal error: " ^ Printexc.to_string exn)
             with Unix.Unix_error _ -> ());
            loop ())
        | Error msg ->
          Hr_obs.Metrics.incr m_errors;
          Wire.send fd "ERR" msg;
          loop ()
        | exception Wire.Disconnected -> ()
        | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) -> ()
      in
      loop ())

let close t =
  List.iter (fun c -> try Unix.close c.fd with Unix.Unix_error _ -> ()) t.conns;
  t.conns <- [];
  (try Unix.close t.socket with Unix.Unix_error _ -> ());
  match t.backend with
  | Durable db when t.owns_db -> Hr_storage.Db.close db
  | Durable _ | Memory _ -> ()

module Client = struct
  type conn = Unix.file_descr

  let connect ?(host = "127.0.0.1") ?timeout ~port () =
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    let addr = Unix.ADDR_INET (Unix.inet_addr_of_string host, port) in
    (match timeout with
    | None -> (
      try Unix.connect fd addr
      with e ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        raise e)
    | Some secs -> (
      try
        Unix.set_nonblock fd;
        (try Unix.connect fd addr
         with Unix.Unix_error (Unix.EINPROGRESS, _, _) -> ());
        (match Unix.select [] [ fd ] [] secs with
        | [], [], [] ->
          failwith (Printf.sprintf "connect to %s:%d timed out after %.3fs" host port secs)
        | _ -> (
          match Unix.getsockopt_error fd with
          | Some err -> raise (Unix.Unix_error (err, "connect", host))
          | None -> ()));
        Unix.clear_nonblock fd;
        (* Per-frame read deadline for the life of the connection. *)
        Unix.setsockopt_float fd Unix.SO_RCVTIMEO secs
      with e ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        raise e));
    fd

  let recv_result conn =
    match Wire.recv conn with
    | Ok ("OK", payload) -> Ok payload
    | Ok ("ERR", payload) -> Error payload
    | Ok (tag, _) -> Error (Printf.sprintf "unexpected reply %S" tag)
    | Error msg -> Error msg
    | exception Wire.Disconnected -> Error "server disconnected"
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      Error "timed out waiting for reply"

  let request conn tag script =
    Wire.send conn tag script;
    recv_result conn

  let exec conn script = request conn "EXEC" script
  let lint conn script = request conn "LINT" script
  let stats ?(json = false) conn = request conn "STATS" (if json then "json" else "")
  let fsck ?(json = false) conn = request conn "FSCK" (if json then "json" else "")

  let send conn tag payload = Wire.send conn tag payload

  let shutdown_send conn =
    try Unix.shutdown conn Unix.SHUTDOWN_SEND with Unix.Unix_error _ -> ()

  let recv conn = recv_result conn

  let recv_any conn =
    match Wire.recv conn with
    | Ok frame -> Ok frame
    | Error msg -> Error msg
    | exception Wire.Disconnected -> Error "server disconnected"
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      Error "timed out waiting for reply"

  let fd conn = conn

  let close conn = try Unix.close conn with Unix.Unix_error _ -> ()
end
