open Hierel
module Wire = Hr_frames.Wire

let m_connections = Hr_obs.Metrics.counter "server.connections"
let m_frames = Hr_obs.Metrics.counter "server.frames_served"
let m_errors = Hr_obs.Metrics.counter "server.frame_errors"
let h_frame = Hr_obs.Metrics.histogram "server.frame_ns"

(* Group-commit visibility: how many frames each event-loop tick
   executed (pipelining depth actually achieved) and how many records
   each shipping pass coalesced into one subscriber push. *)
let h_frames_per_tick = Hr_obs.Metrics.histogram "server.frames_per_tick"
let h_records_per_ship = Hr_obs.Metrics.histogram "repl.records_per_ship"

(* Primary-side replication metrics (docs/OBSERVABILITY.md). [repl.lag]
   is the LSN delta between the primary and the last acknowledged offset
   — 0 means the acking replica was caught up at that moment. *)
let m_shipped = Hr_obs.Metrics.counter "repl.records_shipped"
let m_bootstraps = Hr_obs.Metrics.counter "repl.snapshot_bootstraps"
let m_acks = Hr_obs.Metrics.counter "repl.acks"
let m_backlog_drops = Hr_obs.Metrics.counter "repl.backlog_drops"
let g_lag = Hr_obs.Metrics.gauge "repl.lag"
let g_subscribers = Hr_obs.Metrics.gauge "repl.subscribers"

(* Reader-domain offload: how far behind the latest published version a
   pinned read ran, and how many reads went to the pool vs stayed on the
   event loop (docs/CONCURRENCY.md). *)
let g_pinned_lag = Hr_obs.Metrics.gauge "exec.pinned_version_lag"
let m_inline_reads = Hr_obs.Metrics.counter "exec.inline_reads"

type backend = Memory of Catalog.t | Durable of Hr_storage.Db.t

(* One queued reply. Replies leave a connection strictly in request
   order: inline handlers fill their slot immediately, offloaded reads
   fill theirs when the pool completes them, and [pump_conn] only emits
   the filled prefix — a fast inline ack can never overtake a slower
   offloaded read submitted before it. *)
type pending = { mutable reply : (string * string) option }

type conn = {
  fd : Unix.file_descr;
  dec : Wire.Decoder.t;
  mutable subscribed : bool;
  mutable sent_lsn : int;
  (* FIFO of replies not yet appended to [out]. *)
  slots : pending Queue.t;
  (* This conn buffered an ack for a statement whose group commit has
     not happened yet: no output may reach the kernel until the commit
     point (an early ack could claim durability a crash would break).
     Per-connection on purpose — other conns' offloaded reads are
     derived from already-durable published versions and keep draining
     while a batch is open. *)
  mutable held : bool;
  (* Sequential-path connections block on [Wire.recv], so their replies
     must be computed before [commit_now] returns: never offload. *)
  inline_only : bool;
  (* Outgoing bytes not yet accepted by the kernel, in
     [out.[out_start .. out_start+out_len)]. Event-loop connections are
     non-blocking: a frame is appended here and written opportunistically;
     the remainder drains when [poll]'s select reports the fd writable.
     This keeps one stalled subscriber from blocking the loop (and every
     other client) on a full socket buffer. *)
  mutable out : Bytes.t;
  mutable out_start : int;
  mutable out_len : int;
  (* The peer sent EOF but replies (possibly held for a pending group
     commit) are still queued: keep the conn just long enough to drain
     them, then drop. *)
  mutable closing : bool;
}

type t = {
  socket : Unix.file_descr;
  backend : backend;
  bound_port : int;
  read_only : bool;
  owns_db : bool;
  max_backlog : int;
  (* Group commit: statements executed this tick buffer in the WAL and
     their acks buffer in the per-conn out-buffers; one shared
     [Db.sync] at the commit point makes the batch durable, and only
     then do acks drain and records ship. [group_commit_window] lets
     the commit point wait (up to that many seconds after the first
     buffered statement) for more statements to amortize the fsync;
     [max_batch] closes the window early. 0.0 commits every tick. *)
  group_commit_window : float;
  max_batch : int;
  (* [Some deadline] while a window is open (buffered statements are
     waiting for the batch to fill). *)
  mutable sync_deadline : float option;
  mutable frames_this_tick : int;
  mutable conns : conn list;
  (* Snapshot-isolated reads (docs/CONCURRENCY.md): the event loop is
     the single writer; [publisher] republishes a frozen O(1) snapshot
     of the catalog at every commit point, tagged with the synced LSN.
     With [pool = Some _] ([--reader-domains K]), read-only frames are
     dispatched to K reader domains, each pinning the current published
     version for the duration of one query. *)
  publisher : Hr_exec.Publisher.t;
  pool : Hr_exec.Pool.t option;
  (* In-flight offloaded jobs: pool completion key -> owning reply slot. *)
  jobs : (int, conn * pending) Hashtbl.t;
}

let listen_on host port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
  Unix.listen fd 8;
  let bound_port =
    match Unix.getsockname fd with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> assert false
  in
  (fd, bound_port)

(* A backlog bound below one max frame could never ship a snapshot
   bootstrap, so the default is one full frame plus slack. *)
let default_max_backlog = Wire.max_frame + (4 * 1024 * 1024)

let make ?(host = "127.0.0.1") ?(read_only = false) ?(max_backlog = default_max_backlog)
    ?(group_commit_window = 0.0) ?(max_batch = 64) ?(reader_domains = 0)
    ?(unsafe_publish = false) ~port ~owns_db backend =
  let socket, bound_port = listen_on host port in
  let cat, lsn =
    match backend with
    | Memory cat -> (cat, 0)
    | Durable db -> (Hr_storage.Db.catalog db, Hr_storage.Db.synced_lsn db)
  in
  {
    socket;
    backend;
    bound_port;
    read_only;
    owns_db;
    max_backlog;
    group_commit_window;
    max_batch;
    sync_deadline = None;
    frames_this_tick = 0;
    conns = [];
    publisher = Hr_exec.Publisher.create ~unsafe_publish ~lsn cat;
    pool = (if reader_domains > 0 then Some (Hr_exec.Pool.create ~domains:reader_domains) else None);
    jobs = Hashtbl.create 64;
  }

let create_memory ?host ?read_only ?max_backlog ?group_commit_window ?max_batch
    ?reader_domains ?unsafe_publish ~port () =
  make ?host ?read_only ?max_backlog ?group_commit_window ?max_batch ?reader_domains
    ?unsafe_publish ~port ~owns_db:true
    (Memory (Catalog.create ()))

let create_durable ?host ?read_only ?max_backlog ?group_commit_window ?max_batch
    ?reader_domains ?unsafe_publish ?fsync ~port ~dir () =
  make ?host ?read_only ?max_backlog ?group_commit_window ?max_batch ?reader_domains
    ?unsafe_publish ~port ~owns_db:true
    (Durable (Hr_storage.Db.open_dir ?fsync dir))

let create_for_db ?host ?read_only ?max_backlog ?group_commit_window ?max_batch
    ?reader_domains ?unsafe_publish ~port ~db () =
  make ?host ?read_only ?max_backlog ?group_commit_window ?max_batch ?reader_domains
    ?unsafe_publish ~port ~owns_db:false (Durable db)

let port t = t.bound_port

(* Statements execute against the catalog immediately but their WAL
   records only buffer; the commit point ([commit_now] / the end-of-tick
   logic in [poll]) owns the shared sync. Until it runs, the [Ok] here
   must not reach the client — [holding] below withholds all output
   while unsynced records exist. *)
let run_script t script =
  match t.backend with
  | Memory cat -> Hr_query.Eval.run_script cat script
  | Durable db -> Hr_storage.Db.exec_buffered db script

(* True while acks must be withheld: some executed statement is not yet
   durable. No conn output may drain while this holds. *)
let holding t =
  match t.backend with
  | Memory _ -> false
  | Durable db -> Hr_storage.Db.unsynced db > 0

let catalog t =
  match t.backend with
  | Memory cat -> cat
  | Durable db -> Hr_storage.Db.catalog db

let head_lsn t =
  match t.backend with
  | Memory _ -> 0
  | Durable db -> Hr_storage.Db.lsn db

let lint_catalog cat script = Hr_analysis.Lint.analyze_script ~catalog:cat script
let lint t script = lint_catalog (catalog t) script

(* An ESTIMATE frame carries a bare query expression; it is priced
   against a catalog without evaluating anything. The payload is
   parsed by wrapping it in the statement form, so the expression
   grammar is exactly the REPL's. *)
let explain_estimate_catalog cat payload =
  match Hr_query.Parser.parse_statement ("EXPLAIN ESTIMATE " ^ payload) with
  | exception Hr_query.Parser.Parse_error { msg; _ } -> Error ("parse error: " ^ msg)
  | exception Hr_query.Lexer.Lex_error { msg; _ } -> Error ("lex error: " ^ msg)
  | { Hr_query.Ast.stmt = Hr_query.Ast.Explain_estimate expr; _ } ->
    Hr_analysis.Estimate.explain_live cat expr
  | _ -> Error "ESTIMATE expects a single query expression"

let explain_estimate t payload = explain_estimate_catalog (catalog t) payload

(* An EFFECTS frame carries one whole statement (mutations included —
   nothing is executed, only footprinted, so a read-only replica serves
   it too). *)
let explain_effects_catalog cat payload =
  match Hr_query.Parser.parse_statement payload with
  | exception Hr_query.Parser.Parse_error { msg; _ } -> Error ("parse error: " ^ msg)
  | exception Hr_query.Lexer.Lex_error { msg; _ } -> Error ("lex error: " ^ msg)
  | located -> Ok (Hr_analysis.Effect.explain cat located.Hr_query.Ast.stmt)

let explain_effects t payload = explain_effects_catalog (catalog t) payload

let stats_body payload =
  let snap = Hr_obs.Metrics.snapshot () in
  if String.lowercase_ascii (String.trim payload) = "json" then
    Hr_obs.Metrics.render_json snap
  else Hr_obs.Metrics.render_text snap

(* ---- serving ---------------------------------------------------------- *)

exception Drop_conn

let subscriber_count t =
  List.length (List.filter (fun c -> c.subscribed) t.conns)

(* ---- buffered, non-blocking output ------------------------------------ *)

let out_append conn s =
  let n = String.length s in
  if conn.out_start + conn.out_len + n > Bytes.length conn.out then begin
    let cap = ref (max 1024 (Bytes.length conn.out)) in
    while !cap < conn.out_len + n do
      cap := !cap * 2
    done;
    let dst = if !cap <= Bytes.length conn.out then conn.out else Bytes.create !cap in
    (* Bytes.blit handles the overlapping in-place compaction case *)
    Bytes.blit conn.out conn.out_start dst 0 conn.out_len;
    conn.out <- dst;
    conn.out_start <- 0
  end;
  Bytes.blit_string s 0 conn.out (conn.out_start + conn.out_len) n;
  conn.out_len <- conn.out_len + n

(* Write as much pending output as the kernel will take right now.
   Event-loop fds are non-blocking, so this never stalls; on a blocking
   fd (the sequential path) it completes the whole buffer. Hard socket
   errors (EPIPE, ECONNRESET, ...) propagate to the caller. *)
let out_drain conn =
  let rec push () =
    if conn.out_len > 0 then
      match Unix.write conn.fd conn.out conn.out_start conn.out_len with
      | 0 -> ()
      | n ->
        conn.out_start <- conn.out_start + n;
        conn.out_len <- conn.out_len - n;
        push ()
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
        ->
        ()
  in
  push ();
  if conn.out_len = 0 then begin
    conn.out_start <- 0;
    (* after a burst (e.g. a snapshot bootstrap), stop holding the peak *)
    if Bytes.length conn.out > 1024 * 1024 then conn.out <- Bytes.create 1024
  end

(* Append the filled prefix of the reply FIFO to the out buffer, then
   push to the kernel — unless this conn's earlier bytes are acks
   awaiting a group commit. An empty slot (an offloaded read still
   executing) blocks everything queued behind it, which is exactly the
   per-connection ordering clients rely on. *)
let pump_conn t conn =
  let rec take () =
    match Queue.peek_opt conn.slots with
    | Some { reply = Some (tag, payload) } ->
      ignore (Queue.pop conn.slots);
      out_append conn (Wire.frame tag payload);
      take ()
    | Some { reply = None } | None -> ()
  in
  take ();
  if not conn.held then out_drain conn;
  if conn.out_len > t.max_backlog then begin
    Hr_obs.Metrics.incr m_backlog_drops;
    raise Drop_conn
  end

(* Every inline event-loop reply and replication push goes through here
   so a slow peer accumulates backlog instead of wedging the loop. A
   peer whose backlog exceeds the bound is cut off — a replica will
   reconnect and resume from its durable offset (snapshot-bootstrapping
   if it fell too far behind). *)
let send_conn t conn tag payload =
  Queue.push { reply = Some (tag, payload) } conn.slots;
  (* While a batch is uncommitted the bytes stay buffered: an ack that
     reached the kernel before the shared fsync would tell the client
     "committed" about a statement a crash could still lose. Inline
     replies may reflect live (not-yet-durable) state, so any of them
     pins the conn's output while a batch is open; offloaded replies
     (filled in [reap]) are derived from published — durable — versions
     and never set this. *)
  if holding t then conn.held <- true;
  pump_conn t conn

(* Reply slot for a read dispatched to the pool: reserve FIFO position
   now, fill it when the completion comes back. *)
let offload t conn run =
  match t.pool with
  | None -> invalid_arg "Server.offload: no reader pool"
  | Some pool ->
    let slot = { reply = None } in
    Queue.push slot conn.slots;
    let key = Hr_exec.Pool.submit pool run in
    Hashtbl.replace t.jobs key (conn, slot)

(* Which frames may leave the event loop. A held conn executes reads
   inline so a client that just wrote sees its own (acked) write — the
   published version may not include it yet. Subscribers and
   sequential-path conns stay inline. *)
let can_offload t conn =
  t.pool <> None && (not conn.inline_only) && (not conn.subscribed) && not conn.held

(* Offloaded replies are version-tagged: the payload's first line is
   "<version-id> <lsn> <OK|ERR>", the body follows. The tag is what
   makes snapshot isolation checkable from outside — test/test_mc.ml
   replays the WAL prefix 1..lsn and demands byte equality. *)
let versioned_reply v ok body =
  ( "OKV",
    Printf.sprintf "%d %d %s\n%s" v.Hr_exec.Version.id v.Hr_exec.Version.lsn
      (if ok then "OK" else "ERR")
      body )

(* Build the thunk a reader domain runs: pin the current version, judge
   the frame against its frozen catalog, tag the reply. Everything it
   touches is immutable, domain-local, or internally synchronized
   (metrics, observed-stats store). *)
let read_job t kind payload () =
  let v = Hr_exec.Publisher.current t.publisher in
  let ok, body =
    match kind with
    | `Exec -> (
      match Hr_query.Eval.run_script v.Hr_exec.Version.catalog payload with
      | Ok outputs -> (true, String.concat "\n" outputs)
      | Error msg -> (false, msg))
    | `Lint ->
      (true, Hr_analysis.Diagnostic.render_json (lint_catalog v.Hr_exec.Version.catalog payload))
    | `Estimate -> (
      match explain_estimate_catalog v.Hr_exec.Version.catalog payload with
      | Ok out -> (true, out)
      | Error msg ->
        Hr_obs.Metrics.incr m_errors;
        (false, msg))
    | `Effects -> (
      match explain_effects_catalog v.Hr_exec.Version.catalog payload with
      | Ok out -> (true, out)
      | Error msg ->
        Hr_obs.Metrics.incr m_errors;
        (false, msg))
    | `Stats -> (true, stats_body payload)
  in
  Hr_obs.Metrics.set g_pinned_lag
    ((Hr_exec.Publisher.current t.publisher).Hr_exec.Version.id - v.Hr_exec.Version.id);
  versioned_reply v ok body

(* Ship every {e durable} logged record past the subscriber's offset, as
   one coalesced group. Records above [synced_lsn] stay unshipped until
   the commit point (a replica must never be able to ack a record the
   primary has not fsynced). Raises on a vanished or hopelessly
   backlogged peer; the caller drops the connection. *)
let ship t db conn =
  let synced = Hr_storage.Db.synced_lsn db in
  let n = ref 0 in
  List.iter
    (fun { Hr_storage.Wal.lsn; stmt } ->
      if lsn <= synced then begin
        send_conn t conn Wire.repl_record (Wire.lsn_prefixed lsn stmt);
        conn.sent_lsn <- lsn;
        incr n;
        Hr_obs.Metrics.incr m_shipped
      end)
    (Hr_storage.Db.records_since db conn.sent_lsn);
  if !n > 0 then Hr_obs.Metrics.observe h_records_per_ship !n

(* After a committed script, push the new records to every subscriber.
   A subscriber whose connection broke is silently forgotten — it will
   reconnect and resume from its durable offset. *)
let ship_all t =
  match t.backend with
  | Memory _ -> ()
  | Durable db ->
    let dead = ref [] in
    List.iter
      (fun c ->
        if c.subscribed then
          try ship t db c
          with Unix.Unix_error _ | Wire.Disconnected | Drop_conn -> dead := c :: !dead)
      t.conns;
    List.iter
      (fun c ->
        (try Unix.close c.fd with Unix.Unix_error _ -> ());
        t.conns <- List.filter (fun c' -> c' != c) t.conns)
      !dead;
    if !dead <> [] then Hr_obs.Metrics.set g_subscribers (subscriber_count t)

let handle t conn tag payload =
  match tag with
  | "EXEC" -> (
    match (if t.read_only then Hr_storage.Db.script_mutation payload else None) with
    | Some src ->
      send_conn t conn "ERR"
        (Printf.sprintf "read-only replica: refusing mutating statement %S (execute it on the primary)" src)
    | None ->
      if can_offload t conn && Hr_storage.Db.script_mutation payload = None then
        offload t conn (read_job t `Exec payload)
      else begin
        if Hr_storage.Db.script_mutation payload = None then
          Hr_obs.Metrics.incr m_inline_reads;
        match run_script t payload with
        | Ok outputs ->
          (* the ack buffers; shipping to subscribers happens at the
             commit point, after the batch's shared sync *)
          send_conn t conn "OK" (String.concat "\n" outputs)
        | Error msg -> send_conn t conn "ERR" msg
      end)
  | "LINT" ->
    if can_offload t conn then offload t conn (read_job t `Lint payload)
    else send_conn t conn "OK" (Hr_analysis.Diagnostic.render_json (lint t payload))
  | "ESTIMATE" ->
    if can_offload t conn then offload t conn (read_job t `Estimate payload)
    else (
      match explain_estimate t payload with
      | Ok body -> send_conn t conn "OK" body
      | Error msg ->
        Hr_obs.Metrics.incr m_errors;
        send_conn t conn "ERR" msg)
  | "EFFECTS" ->
    if can_offload t conn then offload t conn (read_job t `Effects payload)
    else (
      match explain_effects t payload with
      | Ok body -> send_conn t conn "OK" body
      | Error msg ->
        Hr_obs.Metrics.incr m_errors;
        send_conn t conn "ERR" msg)
  | "STATS" ->
    if can_offload t conn then offload t conn (read_job t `Stats payload)
    else
      (* payload selects the rendering: "json" or "" for text *)
      send_conn t conn "OK" (stats_body payload)
  | "FSCK" -> (
    (* offline-style verification of the durable directory, served from
       the running primary: read-only, never takes the lock, and runs
       inside the single-threaded loop so no checkpoint races it *)
    match t.backend with
    | Memory _ ->
      Hr_obs.Metrics.incr m_errors;
      send_conn t conn "ERR" "fsck requires a durable backend (start with -d DIR)"
    | Durable db ->
      let report = Hr_check.Fsck.run (Hr_storage.Db.dir db) in
      let body =
        if String.lowercase_ascii (String.trim payload) = "json" then
          Hr_check.Fsck.render_json report
        else Hr_check.Fsck.render_text report
      in
      send_conn t conn "OK" body)
  | tag when tag = Wire.repl_subscribe -> (
    match t.backend with
    | Memory _ ->
      Hr_obs.Metrics.incr m_errors;
      send_conn t conn "ERR" "replication requires a durable primary (start with -d DIR)"
    | Durable db -> (
      match Wire.parse_lsn payload with
      | Error msg ->
        Hr_obs.Metrics.incr m_errors;
        send_conn t conn "ERR" msg
      | Ok lsn ->
        let base = Hr_storage.Db.base_lsn db in
        conn.subscribed <- true;
        Hr_obs.Metrics.set g_subscribers (subscriber_count t);
        conn.sent_lsn <-
          (if lsn < base then begin
             (* The WAL no longer covers the requested offset: bootstrap
                with an image of the live catalog. The image is encoded
                at the current head LSN (the loop is single-threaded, so
                it is consistent), and the stream resumes after it. *)
             let head = Hr_storage.Db.lsn db in
             send_conn t conn Wire.repl_snapshot
               (Wire.lsn_prefixed head (Hr_storage.Db.snapshot_image db));
             Hr_obs.Metrics.incr m_bootstraps;
             head
           end
           else lsn);
        ship t db conn))
  | tag when tag = Wire.shard_pull -> (
    (* Router gather: the stored extension of one relation as compact
       tuple lines. Runs inline against the live catalog so a router
       that just routed a write to this shard reads it back; the held
       mechanics below delay the reply past the covering fsync, so the
       router never merges state a crash could still lose. *)
    let name = String.trim payload in
    match Catalog.find_relation (catalog t) name with
    | None ->
      Hr_obs.Metrics.incr m_errors;
      send_conn t conn "ERR" (Printf.sprintf "unknown relation %s" name)
    | Some rel ->
      let b = Buffer.create 256 in
      List.iter
        (fun { Relation.item; sign } ->
          Buffer.add_char b (match sign with Types.Pos -> '+' | Types.Neg -> '-');
          Buffer.add_char b ' ';
          Array.iteri
            (fun i c ->
              if i > 0 then Buffer.add_char b ',';
              Buffer.add_string b (string_of_int c))
            (Item.coords item);
          Buffer.add_char b '\n')
        (Relation.tuples rel);
      send_conn t conn Wire.shard_part
        (Wire.lsn_prefixed (head_lsn t) (Buffer.contents b)))
  | tag when tag = Wire.shard_exec -> (
    (* Router write path: like EXEC but the ack carries this shard's
       head LSN so the router can track per-shard progress. Always
       inline — the payload is (almost) always mutating. *)
    match (if t.read_only then Hr_storage.Db.script_mutation payload else None) with
    | Some src ->
      send_conn t conn "ERR"
        (Printf.sprintf "read-only replica: refusing mutating statement %S (execute it on the primary)" src)
    | None -> (
      match run_script t payload with
      | Ok outputs ->
        send_conn t conn Wire.shard_ack
          (Wire.lsn_prefixed (head_lsn t) (String.concat "\n" outputs))
      | Error msg -> send_conn t conn "ERR" msg))
  | tag when tag = Wire.repl_ack -> (
    match Wire.parse_lsn payload with
    | Error msg ->
      Hr_obs.Metrics.incr m_errors;
      send_conn t conn "ERR" msg
    | Ok lsn ->
      Hr_obs.Metrics.incr m_acks;
      (match t.backend with
      | Durable db -> Hr_obs.Metrics.set g_lag (Hr_storage.Db.lsn db - lsn)
      | Memory _ -> ()))
  | _ ->
    Hr_obs.Metrics.incr m_errors;
    send_conn t conn "ERR" (Printf.sprintf "unknown request %S" tag)

let new_conn ?(inline_only = false) fd =
  {
    fd;
    dec = Wire.Decoder.create ();
    subscribed = false;
    sent_lsn = 0;
    slots = Queue.create ();
    held = false;
    inline_only;
    out = Bytes.create 1024;
    out_start = 0;
    out_len = 0;
    closing = false;
  }

let drop_conn t conn =
  (try Unix.close conn.fd with Unix.Unix_error _ -> ());
  t.conns <- List.filter (fun c -> c != conn) t.conns;
  if conn.subscribed then Hr_obs.Metrics.set g_subscribers (subscriber_count t)

let handle_timed t conn tag payload =
  Hr_obs.Metrics.incr m_frames;
  t.frames_this_tick <- t.frames_this_tick + 1;
  Hr_obs.Metrics.time h_frame (fun () -> handle t conn tag payload)

(* Drain every complete frame the decoder holds. A malformed header is
   unrecoverable (framing is lost): reply once and drop. *)
let drain_frames t conn =
  let rec loop () =
    match Wire.Decoder.next conn.dec with
    | Ok (Some (tag, payload)) ->
      handle_timed t conn tag payload;
      loop ()
    | Ok None -> ()
    | Error msg ->
      Hr_obs.Metrics.incr m_errors;
      (try send_conn t conn "ERR" msg with Unix.Unix_error _ | Drop_conn -> ());
      raise Drop_conn
  in
  loop ()

let chunk = Bytes.create 65536

(* Read everything the kernel has buffered for this connection (bounded
   so one firehose client cannot starve the tick), then execute every
   complete frame. A pipelining client's whole burst lands in one tick
   and shares the tick's single commit. *)
let max_reads_per_tick = 16

let service t conn =
  let eof = ref false in
  let fed = ref false in
  let rec read_all budget =
    if budget > 0 && not !eof then
      match Unix.read conn.fd chunk 0 (Bytes.length chunk) with
      | 0 -> eof := true
      | n ->
        Wire.Decoder.feed conn.dec chunk n;
        fed := true;
        if n = Bytes.length chunk then read_all (budget - 1)
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
        ->
        ()
  in
  match read_all max_reads_per_tick with
  | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> drop_conn t conn
  | () ->
    (* A burst that ends in EOF (pipeline + shutdown) still executes
       every complete frame it carried before the conn is dropped. *)
    (if !fed || not !eof then
       try drain_frames t conn
       with
       | Drop_conn | Wire.Disconnected -> drop_conn t conn
       | Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) -> drop_conn t conn
       | exn ->
         (* Last line of defense: a handler bug (an uncaught lexer error,
            say) must take down this connection, not the event loop and
            every other client with it. *)
         Hr_obs.Metrics.incr m_errors;
         Printf.eprintf "hrdb: dropping connection after handler error: %s\n%!"
           (Printexc.to_string exn);
         (try send_conn t conn "ERR" ("internal error: " ^ Printexc.to_string exn)
          with Unix.Unix_error _ | Drop_conn -> ());
         drop_conn t conn);
    if !eof && List.memq conn t.conns then
      if conn.subscribed || (conn.out_len = 0 && Queue.is_empty conn.slots && not conn.held)
      then drop_conn t conn
      else conn.closing <- true

let accept_conn t =
  match Unix.accept t.socket with
  | fd, _ ->
    Hr_obs.Metrics.incr m_connections;
    (* event-loop connections are non-blocking so buffered writes (and
       stray reads) can never stall the loop *)
    Unix.set_nonblock fd;
    t.conns <- new_conn fd :: t.conns
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()

(* Push a connection's ready replies and buffered output now that it
   can make progress. A fully drained closing conn (EOF already seen)
   is dropped here. *)
let flush_conn t conn =
  match pump_conn t conn with
  | () ->
    if conn.closing && conn.out_len = 0 && Queue.is_empty conn.slots then drop_conn t conn
  | exception (Drop_conn | Unix.Unix_error _) -> drop_conn t conn

(* Collect finished pool jobs and route each reply into its reserved
   slot; a conn that vanished while its read was in flight just
   discards the completion. *)
let reap t =
  match t.pool with
  | None -> ()
  | Some pool ->
    List.iter
      (fun { Hr_exec.Pool.c_key; c_tag; c_payload } ->
        match Hashtbl.find_opt t.jobs c_key with
        | None -> ()
        | Some (conn, slot) ->
          Hashtbl.remove t.jobs c_key;
          slot.reply <- Some (c_tag, c_payload);
          if List.memq conn t.conns then flush_conn t conn)
      (Hr_exec.Pool.drain pool)

(* Publish the post-commit catalog as a new pinned version. Runs after
   the shared sync, so a version's LSN can never exceed the durable
   LSN — visibility never outruns durability. The in-memory backend has
   no WAL; its "LSN" is a publish sequence number. *)
let publish_now t =
  match t.backend with
  | Durable db ->
    ignore
      (Hr_exec.Publisher.publish t.publisher
         ~lsn:(Hr_storage.Db.synced_lsn db)
         (Hr_storage.Db.catalog db))
  | Memory cat ->
    let prev = Hr_exec.Publisher.current t.publisher in
    if not (Catalog.same_bindings cat prev.Hr_exec.Version.catalog) then
      ignore (Hr_exec.Publisher.publish t.publisher ~lsn:(prev.Hr_exec.Version.lsn + 1) cat)

(* The commit point: one shared WAL sync covers every statement buffered
   since the last one, then the new catalog version publishes, the batch
   ships to subscribers as one coalesced record group and every withheld
   ack drains. Order matters — sync before publish, sync before acks,
   sync before ship. *)
let commit_now t =
  (match t.backend with
  | Memory _ -> ()
  | Durable db -> Hr_storage.Db.sync db);
  t.sync_deadline <- None;
  publish_now t;
  List.iter (fun c -> c.held <- false) t.conns;
  ship_all t;
  List.iter
    (fun c ->
      if
        List.memq c t.conns
        && (c.out_len > 0 || (not (Queue.is_empty c.slots)) || c.closing)
      then flush_conn t c)
    t.conns

(* End-of-tick commit decision. With a zero window (the default) every
   tick that buffered statements commits; a positive window holds the
   batch open across ticks until the deadline or [max_batch], letting
   slow-trickling clients share one fsync. *)
let end_tick t =
  (if t.frames_this_tick > 0 then begin
     Hr_obs.Metrics.observe h_frames_per_tick t.frames_this_tick;
     t.frames_this_tick <- 0
   end);
  match t.backend with
  | Memory _ -> commit_now t
  | Durable db ->
    let u = Hr_storage.Db.unsynced db in
    if u = 0 then commit_now t (* nothing to sync; still ship + drain *)
    else if u >= t.max_batch || t.group_commit_window <= 0.0 then commit_now t
    else begin
      let now = Unix.gettimeofday () in
      match t.sync_deadline with
      | Some d when now < d -> () (* window still open: keep holding *)
      | Some _ -> commit_now t
      | None -> t.sync_deadline <- Some (now +. t.group_commit_window)
    end

let poll ?(extra = []) t timeout =
  (* an open commit window caps the select wait so the deadline fires *)
  let timeout =
    match t.sync_deadline with
    | None -> timeout
    | Some d ->
      let remaining = d -. Unix.gettimeofday () in
      if remaining <= 0.0 then 0.0
      else if timeout < 0.0 then remaining
      else min timeout remaining
  in
  (* the pool's self-pipe joins the select set so a completed read
     wakes the loop immediately instead of at the next timeout *)
  let pool_fds = match t.pool with None -> [] | Some p -> [ Hr_exec.Pool.notify_fd p ] in
  let fds = (t.socket :: pool_fds) @ List.map (fun c -> c.fd) t.conns @ extra in
  (* a held conn's output must not drain mid-window, so its writability
     is irrelevant until the commit point clears it *)
  let wfds =
    List.filter_map
      (fun c -> if c.out_len > 0 && not c.held then Some c.fd else None)
      t.conns
  in
  match Unix.select fds wfds [] timeout with
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> []
  | readable, writable, _ ->
    if List.mem t.socket readable then accept_conn t;
    (* service over a copy: handlers mutate [t.conns] *)
    List.iter
      (fun c -> if List.mem c.fd writable && List.memq c t.conns then flush_conn t c)
      t.conns;
    List.iter
      (fun c -> if List.mem c.fd readable && List.memq c t.conns then service t c)
      t.conns;
    reap t;
    end_tick t;
    List.filter (fun fd -> List.mem fd readable) extra

let serve_forever t =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  while true do
    ignore (poll t 0.5)
  done

(* The historical sequential path: one client at a time, blocking reads.
   The connection still joins [t.conns] so replication pushes reach a
   subscriber that pipelines EXECs on its own connection. *)
let serve_one_connection t =
  let fd, _ = Unix.accept t.socket in
  Hr_obs.Metrics.incr m_connections;
  (* blocking fd; the reply must be complete when [commit_now] returns *)
  let conn = new_conn ~inline_only:true fd in
  t.conns <- conn :: t.conns;
  Fun.protect
    ~finally:(fun () -> if List.memq conn t.conns then drop_conn t conn)
    (fun () ->
      let rec loop () =
        match Wire.recv fd with
        | Ok (tag, payload) -> (
          (* one frame, one commit: the sequential path keeps its
             historical request/response durability (the fd is blocking,
             so the drain in [commit_now] completes the reply) *)
          match
            handle_timed t conn tag payload;
            commit_now t
          with
          | () -> loop ()
          | exception Drop_conn -> ()
          | exception Wire.Disconnected -> ()
          | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) -> ()
          | exception exn ->
            (* mirror the event loop: a handler bug answers ERR and keeps
               serving rather than killing the connection loop *)
            Hr_obs.Metrics.incr m_errors;
            (try Wire.send fd "ERR" ("internal error: " ^ Printexc.to_string exn)
             with Unix.Unix_error _ -> ());
            loop ())
        | Error msg ->
          Hr_obs.Metrics.incr m_errors;
          Wire.send fd "ERR" msg;
          loop ()
        | exception Wire.Disconnected -> ()
        | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) -> ()
      in
      loop ())

let close t =
  (match t.pool with None -> () | Some pool -> Hr_exec.Pool.shutdown pool);
  Hashtbl.reset t.jobs;
  List.iter (fun c -> try Unix.close c.fd with Unix.Unix_error _ -> ()) t.conns;
  t.conns <- [];
  (try Unix.close t.socket with Unix.Unix_error _ -> ());
  match t.backend with
  | Durable db when t.owns_db -> Hr_storage.Db.close db
  | Durable _ | Memory _ -> ()

module Client = struct
  type conn = Unix.file_descr

  let connect ?(host = "127.0.0.1") ?timeout ~port () =
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    let addr = Unix.ADDR_INET (Unix.inet_addr_of_string host, port) in
    (match timeout with
    | None -> (
      try Unix.connect fd addr
      with e ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        raise e)
    | Some secs -> (
      try
        Unix.set_nonblock fd;
        (try Unix.connect fd addr
         with Unix.Unix_error (Unix.EINPROGRESS, _, _) -> ());
        (match Unix.select [] [ fd ] [] secs with
        | [], [], [] ->
          failwith (Printf.sprintf "connect to %s:%d timed out after %.3fs" host port secs)
        | _ -> (
          match Unix.getsockopt_error fd with
          | Some err -> raise (Unix.Unix_error (err, "connect", host))
          | None -> ()));
        Unix.clear_nonblock fd;
        (* Per-frame read deadline for the life of the connection. *)
        Unix.setsockopt_float fd Unix.SO_RCVTIMEO secs
      with e ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        raise e));
    fd

  (* An [OKV] payload is "<version-id> <lsn> <OK|ERR>\n<body>": the
     reply to a read a pool server ran on a reader domain, tagged with
     the published version it pinned. *)
  let parse_versioned payload =
    match String.index_opt payload '\n' with
    | None -> None
    | Some nl -> (
      let header = String.sub payload 0 nl in
      let body = String.sub payload (nl + 1) (String.length payload - nl - 1) in
      match String.split_on_char ' ' header with
      | [ id; lsn; (("OK" | "ERR") as status) ] -> (
        match (int_of_string_opt id, int_of_string_opt lsn) with
        | Some id, Some lsn -> Some ((id, lsn), status = "OK", body)
        | _ -> None)
      | _ -> None)

  let recv_result conn =
    match Wire.recv conn with
    | Ok ("OK", payload) -> Ok payload
    | Ok ("OKV", payload) -> (
      match parse_versioned payload with
      | Some (_, true, body) -> Ok body
      | Some (_, false, body) -> Error body
      | None -> Error "malformed versioned reply")
    | Ok ("ERR", payload) -> Error payload
    | Ok (tag, _) -> Error (Printf.sprintf "unexpected reply %S" tag)
    | Error msg -> Error msg
    | exception Wire.Disconnected -> Error "server disconnected"
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      Error "timed out waiting for reply"

  (* Like {!recv_result} but keeps the version tag: [Some (id, lsn)] on
     a reply a reader domain pinned, [None] from the inline path. *)
  let recv_versioned conn =
    match Wire.recv conn with
    | Ok ("OK", payload) -> Ok (None, true, payload)
    | Ok ("ERR", payload) -> Ok (None, false, payload)
    | Ok ("OKV", payload) -> (
      match parse_versioned payload with
      | Some (v, ok, body) -> Ok (Some v, ok, body)
      | None -> Error "malformed versioned reply")
    | Ok (tag, _) -> Error (Printf.sprintf "unexpected reply %S" tag)
    | Error msg -> Error msg
    | exception Wire.Disconnected -> Error "server disconnected"
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      Error "timed out waiting for reply"

  let exec_versioned conn script =
    Wire.send conn "EXEC" script;
    recv_versioned conn

  let request conn tag script =
    Wire.send conn tag script;
    recv_result conn

  let exec conn script = request conn "EXEC" script
  let lint conn script = request conn "LINT" script
  let explain_estimate conn expr = request conn "ESTIMATE" expr
  let explain_effects conn stmt = request conn "EFFECTS" stmt
  let stats ?(json = false) conn = request conn "STATS" (if json then "json" else "")
  let fsck ?(json = false) conn = request conn "FSCK" (if json then "json" else "")

  let send conn tag payload = Wire.send conn tag payload

  let shutdown_send conn =
    try Unix.shutdown conn Unix.SHUTDOWN_SEND with Unix.Unix_error _ -> ()

  let recv conn = recv_result conn

  let recv_any conn =
    match Wire.recv conn with
    | Ok frame -> Ok frame
    | Error msg -> Error msg
    | exception Wire.Disconnected -> Error "server disconnected"
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      Error "timed out waiting for reply"

  let fd conn = conn

  let close conn = try Unix.close conn with Unix.Unix_error _ -> ()
end
