open Hierel
module Wire = Hr_frames.Wire

let m_connections = Hr_obs.Metrics.counter "server.connections"
let m_frames = Hr_obs.Metrics.counter "server.frames_served"
let m_errors = Hr_obs.Metrics.counter "server.frame_errors"
let h_frame = Hr_obs.Metrics.histogram "server.frame_ns"

(* Primary-side replication metrics (docs/OBSERVABILITY.md). [repl.lag]
   is the LSN delta between the primary and the last acknowledged offset
   — 0 means the acking replica was caught up at that moment. *)
let m_shipped = Hr_obs.Metrics.counter "repl.records_shipped"
let m_bootstraps = Hr_obs.Metrics.counter "repl.snapshot_bootstraps"
let m_acks = Hr_obs.Metrics.counter "repl.acks"
let g_lag = Hr_obs.Metrics.gauge "repl.lag"
let g_subscribers = Hr_obs.Metrics.gauge "repl.subscribers"

type backend = Memory of Catalog.t | Durable of Hr_storage.Db.t

type conn = {
  fd : Unix.file_descr;
  dec : Wire.Decoder.t;
  mutable subscribed : bool;
  mutable sent_lsn : int;
}

type t = {
  socket : Unix.file_descr;
  backend : backend;
  bound_port : int;
  read_only : bool;
  owns_db : bool;
  mutable conns : conn list;
}

let listen_on host port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
  Unix.listen fd 8;
  let bound_port =
    match Unix.getsockname fd with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> assert false
  in
  (fd, bound_port)

let make ?(host = "127.0.0.1") ?(read_only = false) ~port ~owns_db backend =
  let socket, bound_port = listen_on host port in
  { socket; backend; bound_port; read_only; owns_db; conns = [] }

let create_memory ?host ?read_only ~port () =
  make ?host ?read_only ~port ~owns_db:true (Memory (Catalog.create ()))

let create_durable ?host ?read_only ~port ~dir () =
  make ?host ?read_only ~port ~owns_db:true (Durable (Hr_storage.Db.open_dir dir))

let create_for_db ?host ?read_only ~port ~db () =
  make ?host ?read_only ~port ~owns_db:false (Durable db)

let port t = t.bound_port

let run_script t script =
  match t.backend with
  | Memory cat -> Hr_query.Eval.run_script cat script
  | Durable db -> Hr_storage.Db.exec db script

let catalog t =
  match t.backend with
  | Memory cat -> cat
  | Durable db -> Hr_storage.Db.catalog db

let lint t script =
  Hr_analysis.Lint.analyze_script ~catalog:(catalog t) script

(* ---- serving ---------------------------------------------------------- *)

exception Drop_conn

let subscriber_count t =
  List.length (List.filter (fun c -> c.subscribed) t.conns)

(* Ship every logged record past the subscriber's offset. Raises on a
   vanished peer; the caller drops the connection. *)
let ship db conn =
  List.iter
    (fun { Hr_storage.Wal.lsn; stmt } ->
      Wire.send conn.fd Wire.repl_record (Wire.lsn_prefixed lsn stmt);
      conn.sent_lsn <- lsn;
      Hr_obs.Metrics.incr m_shipped)
    (Hr_storage.Db.records_since db conn.sent_lsn)

(* After a committed script, push the new records to every subscriber.
   A subscriber whose connection broke is silently forgotten — it will
   reconnect and resume from its durable offset. *)
let ship_all t =
  match t.backend with
  | Memory _ -> ()
  | Durable db ->
    let dead = ref [] in
    List.iter
      (fun c ->
        if c.subscribed then
          try ship db c
          with Unix.Unix_error _ | Wire.Disconnected -> dead := c :: !dead)
      t.conns;
    List.iter
      (fun c ->
        (try Unix.close c.fd with Unix.Unix_error _ -> ());
        t.conns <- List.filter (fun c' -> c' != c) t.conns)
      !dead;
    if !dead <> [] then Hr_obs.Metrics.set g_subscribers (subscriber_count t)

let handle t conn tag payload =
  match tag with
  | "EXEC" -> (
    match (if t.read_only then Hr_storage.Db.script_mutation payload else None) with
    | Some src ->
      Wire.send conn.fd "ERR"
        (Printf.sprintf "read-only replica: refusing mutating statement %S (execute it on the primary)" src)
    | None -> (
      match run_script t payload with
      | Ok outputs ->
        Wire.send conn.fd "OK" (String.concat "\n" outputs);
        ship_all t
      | Error msg -> Wire.send conn.fd "ERR" msg))
  | "LINT" ->
    Wire.send conn.fd "OK" (Hr_analysis.Diagnostic.render_json (lint t payload))
  | "STATS" ->
    (* payload selects the rendering: "json" or "" for text *)
    let snap = Hr_obs.Metrics.snapshot () in
    let body =
      if String.lowercase_ascii (String.trim payload) = "json" then
        Hr_obs.Metrics.render_json snap
      else Hr_obs.Metrics.render_text snap
    in
    Wire.send conn.fd "OK" body
  | tag when tag = Wire.repl_subscribe -> (
    match t.backend with
    | Memory _ ->
      Hr_obs.Metrics.incr m_errors;
      Wire.send conn.fd "ERR" "replication requires a durable primary (start with -d DIR)"
    | Durable db -> (
      match Wire.parse_lsn payload with
      | Error msg ->
        Hr_obs.Metrics.incr m_errors;
        Wire.send conn.fd "ERR" msg
      | Ok lsn ->
        let base = Hr_storage.Db.base_lsn db in
        conn.subscribed <- true;
        Hr_obs.Metrics.set g_subscribers (subscriber_count t);
        conn.sent_lsn <-
          (if lsn < base then begin
             (* The WAL no longer covers the requested offset: bootstrap
                with an image of the live catalog. The image is encoded
                at the current head LSN (the loop is single-threaded, so
                it is consistent), and the stream resumes after it. *)
             let head = Hr_storage.Db.lsn db in
             Wire.send conn.fd Wire.repl_snapshot
               (Wire.lsn_prefixed head (Hr_storage.Db.snapshot_image db));
             Hr_obs.Metrics.incr m_bootstraps;
             head
           end
           else lsn);
        ship db conn))
  | tag when tag = Wire.repl_ack -> (
    match Wire.parse_lsn payload with
    | Error msg ->
      Hr_obs.Metrics.incr m_errors;
      Wire.send conn.fd "ERR" msg
    | Ok lsn ->
      Hr_obs.Metrics.incr m_acks;
      (match t.backend with
      | Durable db -> Hr_obs.Metrics.set g_lag (Hr_storage.Db.lsn db - lsn)
      | Memory _ -> ()))
  | _ ->
    Hr_obs.Metrics.incr m_errors;
    Wire.send conn.fd "ERR" (Printf.sprintf "unknown request %S" tag)

let new_conn fd =
  { fd; dec = Wire.Decoder.create (); subscribed = false; sent_lsn = 0 }

let drop_conn t conn =
  (try Unix.close conn.fd with Unix.Unix_error _ -> ());
  t.conns <- List.filter (fun c -> c != conn) t.conns;
  if conn.subscribed then Hr_obs.Metrics.set g_subscribers (subscriber_count t)

let handle_timed t conn tag payload =
  Hr_obs.Metrics.incr m_frames;
  Hr_obs.Metrics.time h_frame (fun () -> handle t conn tag payload)

(* Drain every complete frame the decoder holds. A malformed header is
   unrecoverable (framing is lost): reply once and drop. *)
let drain_frames t conn =
  let rec loop () =
    match Wire.Decoder.next conn.dec with
    | Ok (Some (tag, payload)) ->
      handle_timed t conn tag payload;
      loop ()
    | Ok None -> ()
    | Error msg ->
      Hr_obs.Metrics.incr m_errors;
      (try Wire.send conn.fd "ERR" msg with Unix.Unix_error _ -> ());
      raise Drop_conn
  in
  loop ()

let chunk = Bytes.create 65536

let service t conn =
  match Unix.read conn.fd chunk 0 (Bytes.length chunk) with
  | 0 -> drop_conn t conn
  | n -> (
    Wire.Decoder.feed conn.dec chunk n;
    try drain_frames t conn
    with
    | Drop_conn | Wire.Disconnected -> drop_conn t conn
    | Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) -> drop_conn t conn)
  | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> drop_conn t conn

let accept_conn t =
  match Unix.accept t.socket with
  | fd, _ ->
    Hr_obs.Metrics.incr m_connections;
    t.conns <- new_conn fd :: t.conns
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()

let poll ?(extra = []) t timeout =
  let fds = (t.socket :: List.map (fun c -> c.fd) t.conns) @ extra in
  match Unix.select fds [] [] timeout with
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> []
  | readable, _, _ ->
    if List.mem t.socket readable then accept_conn t;
    (* service over a copy: handlers mutate [t.conns] *)
    List.iter
      (fun c -> if List.mem c.fd readable && List.memq c t.conns then service t c)
      t.conns;
    List.filter (fun fd -> List.mem fd readable) extra

let serve_forever t =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  while true do
    ignore (poll t 0.5)
  done

(* The historical sequential path: one client at a time, blocking reads.
   The connection still joins [t.conns] so replication pushes reach a
   subscriber that pipelines EXECs on its own connection. *)
let serve_one_connection t =
  let fd, _ = Unix.accept t.socket in
  Hr_obs.Metrics.incr m_connections;
  let conn = new_conn fd in
  t.conns <- conn :: t.conns;
  Fun.protect
    ~finally:(fun () -> if List.memq conn t.conns then drop_conn t conn)
    (fun () ->
      let rec loop () =
        match Wire.recv fd with
        | Ok (tag, payload) ->
          handle_timed t conn tag payload;
          loop ()
        | Error msg ->
          Hr_obs.Metrics.incr m_errors;
          Wire.send fd "ERR" msg;
          loop ()
        | exception Wire.Disconnected -> ()
        | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) -> ()
      in
      loop ())

let close t =
  List.iter (fun c -> try Unix.close c.fd with Unix.Unix_error _ -> ()) t.conns;
  t.conns <- [];
  (try Unix.close t.socket with Unix.Unix_error _ -> ());
  match t.backend with
  | Durable db when t.owns_db -> Hr_storage.Db.close db
  | Durable _ | Memory _ -> ()

module Client = struct
  type conn = Unix.file_descr

  let connect ?(host = "127.0.0.1") ?timeout ~port () =
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    let addr = Unix.ADDR_INET (Unix.inet_addr_of_string host, port) in
    (match timeout with
    | None -> (
      try Unix.connect fd addr
      with e ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        raise e)
    | Some secs -> (
      try
        Unix.set_nonblock fd;
        (try Unix.connect fd addr
         with Unix.Unix_error (Unix.EINPROGRESS, _, _) -> ());
        (match Unix.select [] [ fd ] [] secs with
        | [], [], [] ->
          failwith (Printf.sprintf "connect to %s:%d timed out after %.3fs" host port secs)
        | _ -> (
          match Unix.getsockopt_error fd with
          | Some err -> raise (Unix.Unix_error (err, "connect", host))
          | None -> ()));
        Unix.clear_nonblock fd;
        (* Per-frame read deadline for the life of the connection. *)
        Unix.setsockopt_float fd Unix.SO_RCVTIMEO secs
      with e ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        raise e));
    fd

  let recv_result conn =
    match Wire.recv conn with
    | Ok ("OK", payload) -> Ok payload
    | Ok ("ERR", payload) -> Error payload
    | Ok (tag, _) -> Error (Printf.sprintf "unexpected reply %S" tag)
    | Error msg -> Error msg
    | exception Wire.Disconnected -> Error "server disconnected"
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      Error "timed out waiting for reply"

  let request conn tag script =
    Wire.send conn tag script;
    recv_result conn

  let exec conn script = request conn "EXEC" script
  let lint conn script = request conn "LINT" script
  let stats ?(json = false) conn = request conn "STATS" (if json then "json" else "")

  let send conn tag payload = Wire.send conn tag payload

  let shutdown_send conn =
    try Unix.shutdown conn Unix.SHUTDOWN_SEND with Unix.Unix_error _ -> ()

  let recv conn = recv_result conn

  let recv_any conn =
    match Wire.recv conn with
    | Ok frame -> Ok frame
    | Error msg -> Error msg
    | exception Wire.Disconnected -> Error "server disconnected"
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      Error "timed out waiting for reply"

  let fd conn = conn

  let close conn = try Unix.close conn with Unix.Unix_error _ -> ()
end
