(** A TCP server speaking HRQL, with logical-replication endpoints.

    The wire protocol is deliberately dumb and robust — length-framed
    text ({!Hr_frames.Wire}), one round trip per script:

    {v
    client:  EXEC <payload-bytes>\n<payload>
    server:  OK <payload-bytes>\n<payload>      (outputs joined by \n)
          |  ERR <payload-bytes>\n<payload>     (error message)
    v}

    A [LINT] request has the same framing as [EXEC] but runs the static
    analyzer against a snapshot of the live catalog instead of executing
    the script; the [OK] payload is the diagnostics as a JSON array
    (possibly empty). Lint requests never mutate the database.

    An [ESTIMATE] request carries a single query expression (not a
    script); the server prices its optimized plan with the static cost
    model ({!Hr_analysis.Cost_model}) against the live catalog and
    returns the annotated plan — estimated rows and work units per node
    — as the [OK] payload. Like [LINT], nothing is executed or mutated:
    the frame is classified as non-mutating, so it is never WAL-logged
    and leaves every statement counter untouched.

    An [EFFECTS] request carries one whole statement (mutations
    included) and returns its rendered read/write cone footprint
    ({!Hr_analysis.Effect}) as the [OK] payload. Only the footprint is
    computed — the statement never executes — so the frame is
    non-mutating and read-only replicas serve it too.

    A [STATS] request returns a snapshot of the process-wide metrics
    registry ({!Hr_obs.Metrics}); a payload of ["json"] selects the JSON
    rendering, anything else the human-readable text table. The server
    also counts connections, frames and per-frame latency — metric names
    are catalogued in [docs/OBSERVABILITY.md].

    An [FSCK] request (durable backends only) runs {!Hr_check.Fsck.run}
    over the server's own database directory and returns the report — a
    payload of ["json"] selects the JSON rendering. The check is
    read-only and runs inside the event loop, so it can never race a
    checkpoint. In-memory backends answer [ERR].

    {b Sharding} (protocol in [docs/SHARDING.md]): every server also
    answers the two backend-shard frames a router
    ({!Hr_shard.Router} / [hrdb_server --router]) fans out.
    [SHARD_PULL] carries one relation name and answers [SHARD_PART]
    with the relation's stored tuple lines, LSN-prefixed with this
    shard's head; [SHARD_EXEC] carries an HRQL script and answers
    [SHARD_ACK] (LSN-prefixed evaluator reply) or [ERR]. Both run
    inline on the event loop against the live catalog, and their
    replies obey the group-commit hold: a router never observes state
    that is not yet durable on the shard.

    {b Replication} (durable backends only; protocol and failure matrix
    in [docs/REPLICATION.md]): a [REPL_SUBSCRIBE] frame carrying the
    subscriber's last applied LSN turns its connection into a
    replication stream. If the requested LSN predates the primary's
    snapshot base, a [REPL_SNAPSHOT] bootstrap frame (catalog image plus
    its LSN) is sent first; then every logged statement after the
    subscriber's offset is shipped as a [REPL_RECORD] frame, and new
    statements are pushed as they commit. [REPL_ACK] frames from the
    subscriber update the primary's [repl.lag] gauge.

    {b Concurrency model} (details in [docs/CONCURRENCY.md]): the
    [select] event loop of {!serve_forever} is the {e single writer} —
    every mutating statement runs on it, strictly serialized. With
    [reader_domains = 0] (the default) it also runs every read, the
    historical single-threaded behavior. With [reader_domains = K > 0],
    read-only frames ([EXEC] with no mutating statement, [LINT],
    [ESTIMATE], [EFFECTS], [STATS]) are dispatched to a pool of K OCaml 5 reader
    domains. Each offloaded read pins the {e published version} current
    when it starts — an immutable, frozen snapshot of the catalog the
    commit point republishes after each group commit, tagged with the
    synced LSN — and evaluates lock-free against it. Readers therefore
    observe only whole committed-and-durable batches (snapshot
    isolation; visibility never outruns durability), writes never wait
    for reads, and replies still leave each connection in request order
    (offloaded replies are version-tagged [OKV] frames). A connection
    whose write is awaiting its group commit runs its reads inline so
    it always sees its own writes. {!serve_one_connection} is the
    historical sequential path (accept one client, serve it to
    disconnection; never offloads) and is kept for tests and
    single-client tools. Backends: a plain in-memory catalog or a
    durable {!Hr_storage.Db} directory. *)

type t

val create_memory :
  ?host:string ->
  ?read_only:bool ->
  ?max_backlog:int ->
  ?group_commit_window:float ->
  ?max_batch:int ->
  ?reader_domains:int ->
  ?unsafe_publish:bool ->
  port:int ->
  unit ->
  t
(** Binds and listens; [port = 0] picks an ephemeral port (see {!port}).
    [host] defaults to 127.0.0.1. Statements run against a fresh
    in-memory catalog. [read_only] (default false) refuses mutating
    scripts with an error. [max_backlog] bounds the bytes of unsent
    output buffered per connection in the event loop (writes are
    non-blocking, so a stalled peer accumulates backlog instead of
    wedging the loop); a connection exceeding it is dropped and counted
    in [repl.backlog_drops]. The default is one maximum frame plus
    slack, so a snapshot bootstrap always fits.

    {b Group commit} (durable backends; the two knobs are accepted but
    inert on an in-memory catalog): each event-loop tick executes every
    complete frame from every readable connection, buffering the WAL
    appends and the clients' acks, then commits the whole batch with one
    shared write+fsync — only after that sync do acks drain and records
    ship to subscribers. [group_commit_window] (seconds, default 0.0)
    optionally holds the batch open across ticks, up to that long after
    the first buffered statement, so trickling clients can share a sync;
    [max_batch] (default 64) closes the window early once that many
    statements are buffered.

    {b Reader domains:} [reader_domains] (default 0 — fully
    single-threaded) spawns that many OCaml 5 domains that execute
    read-only frames against pinned published versions; see the
    concurrency model above. [unsafe_publish] (default false) is a
    {e deliberately broken} publication mode for the concurrency test
    harness: the commit point publishes the live mutable catalog
    instead of a frozen snapshot, so concurrent readers can observe
    partially applied batches under a stale version tag. It exists so
    [test/test_mc.ml] can prove it would catch an isolation bug; never
    set it outside tests. *)

val create_durable :
  ?host:string ->
  ?read_only:bool ->
  ?max_backlog:int ->
  ?group_commit_window:float ->
  ?max_batch:int ->
  ?reader_domains:int ->
  ?unsafe_publish:bool ->
  ?fsync:bool ->
  port:int ->
  dir:string ->
  unit ->
  t
(** Same, over a {!Hr_storage.Db} directory (WAL + snapshots).
    [fsync:false] (default true) is the benchmark escape hatch: commits
    flush to the OS but skip the real [Unix.fsync]. *)

val create_for_db :
  ?host:string ->
  ?read_only:bool ->
  ?max_backlog:int ->
  ?group_commit_window:float ->
  ?max_batch:int ->
  ?reader_domains:int ->
  ?unsafe_publish:bool ->
  port:int ->
  db:Hr_storage.Db.t ->
  unit ->
  t
(** Same, over an already-open database the caller owns; {!close} will
    {e not} close the database. The replica embeds its serving endpoint
    this way: the replication apply loop and the read path share one
    {!Hr_storage.Db}. *)

val port : t -> int

val lint : t -> string -> Hr_analysis.Diagnostic.t list
(** Statically analyze a script against a snapshot of the server's live
    catalog — schemas and hierarchies are visible to the checks, but
    nothing is executed or mutated. *)

val poll : ?extra:Unix.file_descr list -> t -> float -> Unix.file_descr list
(** One event-loop iteration: waits up to the given number of seconds
    for traffic (less if an open group-commit window's deadline is
    nearer), accepts pending connections, drains and executes {e every}
    complete frame on every readable connection, then runs the
    end-of-tick commit point — shared WAL sync, coalesced shipping to
    subscribers, ack drain. Returns which of the [extra] descriptors
    were readable — the hook that lets an embedding process (the
    replica) multiplex its own upstream connection into the same
    [select]. *)

val serve_one_connection : t -> unit
(** Accepts a single connection and serves requests until the client
    disconnects. Blocking, sequential. *)

val serve_forever : t -> unit
(** The multiplexed event loop: {!poll} until the process dies. SIGPIPE
    is ignored (a vanished subscriber must not kill the primary).
    Intended for a dedicated process ([bin/hrdb_server.exe]). *)

val close : t -> unit

module Client : sig
  type conn

  val connect : ?host:string -> ?timeout:float -> port:int -> unit -> conn
  (** [timeout] (seconds) bounds both the TCP connect and every
      subsequent single-frame read on the connection; omitted, both
      block indefinitely (the historical behavior). A connect timeout
      raises [Failure]; a read timeout surfaces as [Error] from the
      request calls. *)

  val exec : conn -> string -> (string, string) result
  (** Sends one HRQL script; returns the server's combined output or the
      error message. *)

  val lint : conn -> string -> (string, string) result
  (** Sends one script for static analysis; returns the diagnostics as a
      JSON array ([[]] when the script is clean). *)

  val explain_estimate : conn -> string -> (string, string) result
  (** Sends one query expression to be priced statically against the
      live catalog; returns the annotated plan (estimated rows and work
      units per node). Nothing is executed. *)

  val explain_effects : conn -> string -> (string, string) result
  (** Sends one whole statement (mutations included) to be footprinted
      against the live catalog ({!Hr_analysis.Effect}); returns the
      rendered read/write cone footprint. Nothing is executed, so a
      read-only replica serves it too. *)

  val stats : ?json:bool -> conn -> (string, string) result
  (** Fetches the server's metrics snapshot, as text or (with
      [~json:true]) as the documented JSON object. *)

  val fsck : ?json:bool -> conn -> (string, string) result
  (** Asks a durable server to verify its own database directory
      ({!Hr_check.Fsck}); returns the rendered report. In-memory
      backends answer [Error]. *)

  val send : conn -> string -> string -> unit
  (** Writes one raw request frame without waiting for the reply. Paired
      with {!recv}, this lets a test pipeline several requests on one
      connection. *)

  val recv : conn -> (string, string) result
  (** Reads one reply frame ([OK] payload or [ERR] message). A
      version-tagged [OKV] reply (from a server with reader domains) is
      transparently unwrapped to its body. *)

  val recv_versioned : conn -> ((int * int) option * bool * string, string) result
  (** Reads one reply frame keeping the version tag: [Ok (v, ok, body)]
      where [v] is [Some (version_id, lsn)] when the reply was computed
      on a reader domain against that pinned published version, [None]
      when the event loop answered inline; [ok] distinguishes the
      server's OK/ERR verdict. [Error] is a transport-level failure.
      The concurrency harness uses the tag to replay the WAL prefix
      [1..lsn] and demand byte equality. *)

  val exec_versioned : conn -> string -> ((int * int) option * bool * string, string) result
  (** [send conn "EXEC" script] followed by {!recv_versioned}. *)

  val recv_any : conn -> (string * string, string) result
  (** Reads one frame of any tag — the replication subscriber's read
      path ([REPL_SNAPSHOT] / [REPL_RECORD] arrive unprompted). *)

  val fd : conn -> Unix.file_descr
  (** The underlying descriptor, for callers that multiplex ([select])
      over several connections. *)

  val shutdown_send : conn -> unit
  (** Half-closes the connection: no more requests will follow, but
      replies can still be read. Lets a single-threaded test pipeline
      requests, have the (sequential) server drain them, and collect the
      replies afterwards. *)

  val close : conn -> unit
end
