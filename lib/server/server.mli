(** A TCP server speaking HRQL.

    The wire protocol is deliberately dumb and robust — length-framed
    text, one round trip per script:

    {v
    client:  EXEC <payload-bytes>\n<payload>
    server:  OK <payload-bytes>\n<payload>      (outputs joined by \n)
          |  ERR <payload-bytes>\n<payload>     (error message)
    v}

    A [LINT] request has the same framing as [EXEC] but runs the static
    analyzer against a snapshot of the live catalog instead of executing
    the script; the [OK] payload is the diagnostics as a JSON array
    (possibly empty). Lint requests never mutate the database.

    A [STATS] request returns a snapshot of the process-wide metrics
    registry ({!Hr_obs.Metrics}); a payload of ["json"] selects the JSON
    rendering, anything else the human-readable text table. The server
    also counts connections, frames and per-frame latency — metric names
    are catalogued in [docs/OBSERVABILITY.md].

    The server is sequential: it serves one connection at a time and one
    request at a time (the model's transactions are single-writer anyway;
    see {!Hr_storage.Db}'s lock). A connection is served until the client
    closes it. Backends: a plain in-memory catalog or a durable
    {!Hr_storage.Db} directory. *)

type t

val create_memory : ?host:string -> port:int -> unit -> t
(** Binds and listens; [port = 0] picks an ephemeral port (see {!port}).
    [host] defaults to 127.0.0.1. Statements run against a fresh
    in-memory catalog. *)

val create_durable : ?host:string -> port:int -> dir:string -> unit -> t
(** Same, over a {!Hr_storage.Db} directory (WAL + snapshots). *)

val port : t -> int

val lint : t -> string -> Hr_analysis.Diagnostic.t list
(** Statically analyze a script against a snapshot of the server's live
    catalog — schemas and hierarchies are visible to the checks, but
    nothing is executed or mutated. *)

val serve_one_connection : t -> unit
(** Accepts a single connection and serves requests until the client
    disconnects. Blocking. *)

val serve_forever : t -> unit
(** {!serve_one_connection} in a loop. Blocking; intended for a dedicated
    process ([bin/hrdb_server.exe]). *)

val close : t -> unit

module Client : sig
  type conn

  val connect : ?host:string -> port:int -> unit -> conn
  val exec : conn -> string -> (string, string) result
  (** Sends one HRQL script; returns the server's combined output or the
      error message. *)

  val lint : conn -> string -> (string, string) result
  (** Sends one script for static analysis; returns the diagnostics as a
      JSON array ([[]] when the script is clean). *)

  val stats : ?json:bool -> conn -> (string, string) result
  (** Fetches the server's metrics snapshot, as text or (with
      [~json:true]) as the documented JSON object. *)

  val send : conn -> string -> string -> unit
  (** Writes one raw request frame without waiting for the reply. Paired
      with {!recv}, this lets a test pipeline several requests on one
      connection. *)

  val recv : conn -> (string, string) result
  (** Reads one reply frame ([OK] payload or [ERR] message). *)

  val shutdown_send : conn -> unit
  (** Half-closes the connection: no more requests will follow, but
      replies can still be read. Lets a single-threaded test pipeline
      requests, have the (sequential) server drain them, and collect the
      replies afterwards. *)

  val close : conn -> unit
end
