type t = { id : int; name : string }

let table : (string, t) Hashtbl.t = Hashtbl.create 1024
let next_id = ref 0

(* The intern table is process-global and reader domains intern symbols
   on their query paths (schema lookups, value resolution), so both the
   lookup and the insert must be under one lock: a bare [Hashtbl.add]
   racing a resize from another domain can corrupt the table. Interning
   is not hot enough for the single mutex to matter. *)
let mu = Mutex.create ()

let intern name =
  Mutex.lock mu;
  let sym =
    match Hashtbl.find_opt table name with
    | Some sym -> sym
    | None ->
      let sym = { id = !next_id; name } in
      incr next_id;
      Hashtbl.add table name sym;
      sym
  in
  Mutex.unlock mu;
  sym

let name sym = sym.name
let id sym = sym.id
let equal a b = a.id = b.id
let compare a b = Int.compare a.id b.id
let hash sym = sym.id
let pp ppf sym = Format.pp_print_string ppf sym.name

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Hashed = struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)
module Tbl = Hashtbl.Make (Hashed)
