(** Structured diagnostics emitted by the static analyzer.

    Every diagnostic carries a stable code (e.g. [E001], [W102]), a
    severity, the source span it points at, a human message, and zero or
    more related notes. Codes are documented in [docs/LINT.md]; their
    meaning never changes across releases, so scripts and CI can match
    on them.

    Severity encodes what execution would do: [Error] — the statement
    would be rejected (or crash) by the evaluator; [Warning] — the
    statement executes but almost certainly not as intended; [Hint] — a
    stylistic or clarity nudge; [Perf] — the statement is correct but
    the cost model ({!Cost_model}) predicts it is needlessly expensive.
    Perf notes are always advisory: like hints, they never affect exit
    codes, even under [--strict]. *)

type severity = Error | Warning | Hint | Perf

type t = {
  code : string;
  severity : severity;
  loc : Hr_query.Loc.t;
  message : string;
  related : string list;
}

val error : ?related:string list -> code:string -> Hr_query.Loc.t -> string -> t
val warning : ?related:string list -> code:string -> Hr_query.Loc.t -> string -> t
val hint : ?related:string list -> code:string -> Hr_query.Loc.t -> string -> t

val errorf :
  ?related:string list ->
  code:string ->
  Hr_query.Loc.t ->
  ('a, Format.formatter, unit, t) format4 ->
  'a

val warningf :
  ?related:string list ->
  code:string ->
  Hr_query.Loc.t ->
  ('a, Format.formatter, unit, t) format4 ->
  'a

val hintf :
  ?related:string list ->
  code:string ->
  Hr_query.Loc.t ->
  ('a, Format.formatter, unit, t) format4 ->
  'a

val perf : ?related:string list -> code:string -> Hr_query.Loc.t -> string -> t

val perff :
  ?related:string list ->
  code:string ->
  Hr_query.Loc.t ->
  ('a, Format.formatter, unit, t) format4 ->
  'a

val severity_label : severity -> string

val compare : t -> t -> int
(** By location, then severity (errors first), then code. *)

val sort : t list -> t list

val has_errors : t list -> bool
val has_warnings : t list -> bool

val pp : Format.formatter -> t -> unit
(** One line per diagnostic — [3:8-3:13 error[E001] unknown relation
    "fliez"] — followed by indented related notes. *)

val to_json : t -> string

val render_text : t list -> string
(** All diagnostics plus a one-line summary ("2 errors, 1 warning").
    Empty input renders as "no issues". *)

val render_json : t list -> string
(** A JSON array of diagnostic objects. *)
