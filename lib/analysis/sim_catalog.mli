(** The analyzer's simulated catalog.

    A lightweight mutable world the analyzer interprets DDL/DML against
    without touching any live data: domain hierarchies (real
    {!Hr_hierarchy.Hierarchy.t} values, since hierarchies carry no
    tuples) and {e shadow relations} — schema plus whatever rows the
    analyzed script itself asserted.

    A shadow relation is {e exact} when the analyzer knows its full
    contents (created by the script, or snapshotted from a live
    catalog); a relation defined by a [LET] is inexact — its schema is
    known but its contents are not, so content-sensitive checks
    (dead rows, ambiguity conflicts) are skipped for it.

    {!of_catalog} deep-copies every hierarchy and rebuilds every
    relation over the copies, so analyzing a script can never mutate the
    live catalog it was seeded from.

    The sim also carries {e dataflow provenance}: a statement counter, a
    per-relation table of which statement asserted which tuple (and
    where), and the statement each relation was last read in. The
    whole-script checks (dead writes W106, cross-statement
    contradictions W108) are built on it. Writes are only recorded for
    rows the analyzed script itself asserted — tuples seeded from a live
    catalog have no provenance, so those checks never fire on
    pre-existing data. *)

type entry = { rel : Hierel.Relation.t; exact : bool }

type write = {
  w_item : Hierel.Item.t;
  w_sign : Hierel.Types.sign;
  w_loc : Hr_query.Loc.t;  (** where the script asserted it *)
  w_stmt : int;  (** statement counter value at the write *)
}

type t

val empty : unit -> t

val of_catalog : Hierel.Catalog.t -> t
(** Snapshot a live catalog: hierarchy copies (node ids preserved) and
    exact shadow relations rebuilt over the copies. *)

val hierarchies : t -> Hr_hierarchy.Hierarchy.t list

val find_hierarchy : t -> string -> Hr_hierarchy.Hierarchy.t option
(** By domain (root) name. *)

val define_hierarchy : t -> Hr_hierarchy.Hierarchy.t -> unit

val hierarchies_containing : t -> string -> Hr_hierarchy.Hierarchy.t list
(** All hierarchies defining the given class/instance name. *)

val find_relation : t -> string -> entry option
val define_relation : t -> exact:bool -> Hierel.Relation.t -> unit
val replace_relation : t -> entry -> unit
val drop_relation : t -> string -> unit

val poison : t -> string -> unit
(** Mark a relation name as known-bad (e.g. a [LET] whose expression did
    not check): later references are not re-reported as unknown. *)

val is_poisoned : t -> string -> bool

(** {1 Dataflow provenance} *)

val begin_statement : t -> int
(** Advance and return the statement counter; called once per analyzed
    statement. *)

val current_statement : t -> int

val note_read : t -> string -> unit
(** The current statement reads the named relation (query reference,
    ASK, CHECK, consolidation …) — its recorded writes become live. *)

val last_read : t -> string -> int
(** Statement id of the last read of the relation (0 if never read). *)

val record_write : t -> string -> Hierel.Item.t -> Hierel.Types.sign -> Hr_query.Loc.t -> unit
(** Record that the current statement asserted a tuple; an existing
    record for the same item is replaced (the overwrite wins). *)

val find_write : t -> string -> Hierel.Item.t -> write option
val writes_of : t -> string -> write list
(** All recorded writes for a relation, oldest first. *)

val forget_write : t -> string -> Hierel.Item.t -> unit
val forget_writes : t -> string -> unit
