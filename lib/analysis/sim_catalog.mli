(** The analyzer's simulated catalog.

    A lightweight mutable world the analyzer interprets DDL/DML against
    without touching any live data: domain hierarchies (real
    {!Hr_hierarchy.Hierarchy.t} values, since hierarchies carry no
    tuples) and {e shadow relations} — schema plus whatever rows the
    analyzed script itself asserted.

    A shadow relation is {e exact} when the analyzer knows its full
    contents (created by the script, or snapshotted from a live
    catalog); a relation defined by a [LET] is inexact — its schema is
    known but its contents are not, so content-sensitive checks
    (dead rows, ambiguity conflicts) are skipped for it.

    {!of_catalog} deep-copies every hierarchy and rebuilds every
    relation over the copies, so analyzing a script can never mutate the
    live catalog it was seeded from. *)

type entry = { rel : Hierel.Relation.t; exact : bool }

type t

val empty : unit -> t

val of_catalog : Hierel.Catalog.t -> t
(** Snapshot a live catalog: hierarchy copies (node ids preserved) and
    exact shadow relations rebuilt over the copies. *)

val hierarchies : t -> Hr_hierarchy.Hierarchy.t list

val find_hierarchy : t -> string -> Hr_hierarchy.Hierarchy.t option
(** By domain (root) name. *)

val define_hierarchy : t -> Hr_hierarchy.Hierarchy.t -> unit

val hierarchies_containing : t -> string -> Hr_hierarchy.Hierarchy.t list
(** All hierarchies defining the given class/instance name. *)

val find_relation : t -> string -> entry option
val define_relation : t -> exact:bool -> Hierel.Relation.t -> unit
val replace_relation : t -> entry -> unit
val drop_relation : t -> string -> unit

val poison : t -> string -> unit
(** Mark a relation name as known-bad (e.g. a [LET] whose expression did
    not check): later references are not re-reported as unknown. *)

val is_poisoned : t -> string -> bool
