(** The commutativity oracle over statement {!Footprint}s.

    Sound, never complete: [Commute] only when every same-relation atom
    pair involving a write has provably disjoint cones; anything
    unresolvable is [Unknown] and must be treated as conflicting.
    Soundness argument and consumer contract: docs/EFFECTS.md; held to
    account by the differential harness in test/test_effect.ml. *)

type overlap = {
  o_rel : string;
  o_left : Footprint.atom;
  o_right : Footprint.atom;
  o_incomparable : bool;
      (** neither item subsumes the other (lint W110 fires only on
          these: subsumption-related overlaps are the paper's exception
          idiom and stay silent) *)
}

type verdict =
  | Commute
  | Conflict of overlap list  (** at least one proven overlap *)
  | Unknown of string  (** unresolvable; treat as conflicting *)

val footprint :
  find:(string -> Hierel.Relation.t option) -> Hr_query.Ast.statement -> Footprint.t
(** {!Footprint.of_statement} plus the [effect.footprints] metric. *)

val commutes_fp : ?unsound_oracle:bool -> Footprint.t -> Footprint.t -> verdict
(** Both footprints must have been resolved against the same catalog
    state. [unsound_oracle] (default false) is a test-only seeded bug:
    overlapping opposite-sign write pairs are wrongly declared
    commuting. The soundness harness must catch it. *)

val commutes :
  ?unsound_oracle:bool ->
  find:(string -> Hierel.Relation.t option) ->
  Hr_query.Ast.statement ->
  Hr_query.Ast.statement ->
  verdict

val verdict_label : verdict -> string

val note_router_overlap : unit -> unit
(** Count one oracle-approved router overlap ([effect.router_overlapped]). *)

val explain : Hierel.Catalog.t -> Hr_query.Ast.statement -> string
(** The text behind [EXPLAIN EFFECTS <stmt>;]. *)

val ensure_registered : unit -> unit
(** Force linkage so the evaluator's [EXPLAIN EFFECTS] hook is filled
    (same pattern as {!Estimate.ensure_registered}). *)
