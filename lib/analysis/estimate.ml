(** The `EXPLAIN ESTIMATE` surface over {!Cost_model}.

    Renders an annotated plan in the same indented-tree shape as
    [EXPLAIN ANALYZE], with estimated rows and cumulative cost instead
    of measured counters, and registers itself as {!Hr_query.Eval}'s
    estimator at module-init time (the analysis library sits above the
    query library, so the dependency is inverted through a hook). *)

let plans_counter = Hr_obs.Metrics.counter "analysis.estimate.plans"
let nodes_counter = Hr_obs.Metrics.counter "analysis.estimate.nodes"

let rec count_nodes (n : Cost_model.node) =
  List.fold_left (fun acc c -> acc + count_nodes c) 1 n.Cost_model.n_children

let render root =
  let buf = Buffer.create 512 in
  let rec walk depth (n : Cost_model.node) =
    let open Cost_model in
    let note =
      match n.n_kind with
      | Selection { selectivity } -> Printf.sprintf " selectivity=%.2f" selectivity
      | Joining { cartesian = true } -> " cartesian"
      | Flatten { expansion } -> Printf.sprintf " expansion=%.1f" expansion
      | Scan _ | Joining _ | Opaque -> ""
    in
    Buffer.add_string buf
      (Printf.sprintf "%s%s  est-rows=%.0f est-cost=%.1f%s%s\n"
         (String.make (2 * depth) ' ')
         n.n_label n.n_rows n.n_cost note
         (if n.n_exact then " (exact)" else ""));
    List.iter (walk (depth + 1)) n.n_children
  in
  walk 0 root;
  Buffer.contents buf

let explain src expr =
  match Cost_model.plan src expr with
  | Error msg -> Error msg
  | Ok (optimized, root) ->
    Hr_obs.Metrics.incr plans_counter;
    Hr_obs.Metrics.add nodes_counter (count_nodes root);
    Ok
      (Printf.sprintf "plan: %s\n%sestimated cost: %.1f work unit(s)"
         (Hr_query.Optimizer.describe optimized)
         (render root) root.Cost_model.n_cost)

let explain_live cat expr = explain (Cost_model.of_catalog cat) expr

(* [EXPLAIN ESTIMATE] statements evaluated anywhere in the process now
   route here. *)
let () = Hr_query.Eval.set_estimator explain_live

let ensure_registered () = ()
