module Hierarchy = Hr_hierarchy.Hierarchy
module Loc = Hr_query.Loc
module Lexer = Hr_query.Lexer
module Parser = Hr_query.Parser
open Hierel

(* One statement, all internal failures converted to diagnostics: the
   analyzer must never raise, whatever the script or catalog looks
   like. Model/hierarchy errors this deep mean a check above missed a
   precondition the simulated operation enforces — still worth
   reporting, at the statement's span. *)
let analyze_statement sim (lstmt : Hr_query.Ast.located_statement) =
  let acc = ref [] in
  let emit d = acc := d :: !acc in
  (try Stmt_check.check sim ~emit lstmt with
  | Types.Model_error msg | Hierarchy.Error msg | Failure msg ->
    emit (Diagnostic.errorf ~code:"E010" lstmt.Hr_query.Ast.sloc "%s" msg)
  | exn ->
    emit
      (Diagnostic.errorf ~code:"E999" lstmt.Hr_query.Ast.sloc
         "internal analyzer error: %s" (Printexc.to_string exn)));
  (* Performance lints (P3xx) run after the correctness checks so the
     cost model prices the statement against the post-statement sim; a
     statement that already failed to check is skipped rather than
     priced on garbage. *)
  (if not (Diagnostic.has_errors !acc) then
     try Perf_check.check sim ~emit lstmt
     with _ -> () (* advisory only: never let pricing break the lint *));
  Diagnostic.sort (List.rev !acc)

let analyze_script ?catalog input =
  match Parser.parse input with
  | exception Parser.Parse_error { msg; loc } ->
    [ Diagnostic.error ~code:"E000" loc ("syntax error: " ^ msg) ]
  | exception Lexer.Lex_error { msg; loc } ->
    [ Diagnostic.error ~code:"E000" loc ("syntax error: " ^ msg) ]
  | stmts ->
    let sim =
      match catalog with
      | Some cat -> Sim_catalog.of_catalog cat
      | None -> Sim_catalog.empty ()
    in
    Diagnostic.sort (List.concat_map (analyze_statement sim) stmts)
