module Hierarchy = Hr_hierarchy.Hierarchy
module Loc = Hr_query.Loc
module Lexer = Hr_query.Lexer
module Parser = Hr_query.Parser
open Hierel

(* One statement, all internal failures converted to diagnostics: the
   analyzer must never raise, whatever the script or catalog looks
   like. Model/hierarchy errors this deep mean a check above missed a
   precondition the simulated operation enforces — still worth
   reporting, at the statement's span. *)
let analyze_statement sim (lstmt : Hr_query.Ast.located_statement) =
  let acc = ref [] in
  let emit d = acc := d :: !acc in
  (try Stmt_check.check sim ~emit lstmt with
  | Types.Model_error msg | Hierarchy.Error msg | Failure msg ->
    emit (Diagnostic.errorf ~code:"E010" lstmt.Hr_query.Ast.sloc "%s" msg)
  | exn ->
    emit
      (Diagnostic.errorf ~code:"E999" lstmt.Hr_query.Ast.sloc
         "internal analyzer error: %s" (Printexc.to_string exn)));
  (* Performance lints (P3xx) run after the correctness checks so the
     cost model prices the statement against the post-statement sim; a
     statement that already failed to check is skipped rather than
     priced on garbage. *)
  (if not (Diagnostic.has_errors !acc) then
     try Perf_check.check sim ~emit lstmt
     with _ -> () (* advisory only: never let pricing break the lint *));
  Diagnostic.sort (List.rev !acc)

(* ---- whole-script effect pass (W110 / P306) --------------------------- *)

(* Footprints are taken against the sim {e before} each statement runs
   (so an INSERT's cones resolve against the world it executes in), and
   compared after the walk. Comparing across a DDL boundary is safe:
   DDL footprints are opaque, and every oracle answer involving an
   opaque footprint is [Unknown] — never reported, never pipelined. *)

(* Only pairs whose order provably matters: opposite signs (which of
   the incomparable cones wins on their intersection flips), or a
   delete against a write. Same-sign inserts over incomparable cones
   conflict for the oracle (replay acceptance is order-sensitive) but
   flatten identically either way — warning on them would be noise. *)
let order_sensitive (a : Footprint.atom) (b : Footprint.atom) =
  match (a.Footprint.sign, b.Footprint.sign) with
  | Some sa, Some sb -> sa <> sb
  | None, _ | _, None -> true

let write_write_incomparable overlaps =
  List.exists
    (fun (o : Effect.overlap) ->
      o.Effect.o_incomparable
      && o.Effect.o_left.Footprint.mode = Footprint.Write
      && o.Effect.o_right.Footprint.mode = Footprint.Write
      && order_sensitive o.Effect.o_left o.Effect.o_right)
    overlaps

(* W110: a later statement provably conflicts with an earlier one on
   incomparable write cones. Subsumption-related overlaps are the
   paper's exception idiom and stay silent. *)
let conflict_pairs muts =
  let rec pairs acc = function
    | [] -> List.rev acc
    | (l1, fp1) :: rest ->
      let acc =
        List.fold_left
          (fun acc (l2, fp2) ->
            match Effect.commutes_fp fp1 fp2 with
            | Effect.Conflict overlaps when write_write_incomparable overlaps ->
              let rel =
                match
                  List.find_opt
                    (fun (o : Effect.overlap) ->
                      o.Effect.o_incomparable
                      && order_sensitive o.Effect.o_left o.Effect.o_right)
                    overlaps
                with
                | Some o -> o.Effect.o_rel
                | None -> "?"
              in
              Diagnostic.warningf ~code:"W110"
                ~related:
                  [
                    Format.asprintf "conflicts with the statement at %a"
                      Hr_query.Loc.pp l1.Hr_query.Ast.sloc;
                  ]
                l2.Hr_query.Ast.sloc
                "statement writes a cone of %s that overlaps an earlier \
                 statement's write but subsumes neither way: the outcome \
                 depends on statement order"
                rel
              :: acc
            | _ -> acc)
          acc rest
      in
      pairs acc rest
  in
  pairs [] muts

(* P306: a maximal run of >= 2 consecutive mutating statements that
   pairwise commute; relation-level grouping gives the degree of
   parallelism a replica would get. *)
let commuting_runs stmts_fps =
  let diags = ref [] in
  let flush run =
    match List.rev run with
    | (first, _) :: _ :: _ as members ->
      let rels =
        List.sort_uniq String.compare
          (List.concat_map
             (fun (_, fp) -> Option.value ~default:[] (Footprint.relations fp))
             members)
      in
      let last, _ = List.nth members (List.length members - 1) in
      diags :=
        Diagnostic.perff ~code:"P306"
          ~related:
            [
              Format.asprintf "run ends at %a" Hr_query.Loc.pp
                last.Hr_query.Ast.sloc;
            ]
          first.Hr_query.Ast.sloc
          "%d consecutive statements provably commute (%d independent \
           relation group%s): a replica applies them in parallel \
           (--apply-domains), and batching them loses nothing"
          (List.length members) (List.length rels)
          (if List.length rels = 1 then "" else "s")
        :: !diags
    | _ -> ()
  in
  let run =
    List.fold_left
      (fun run (lstmt, fp) ->
        let opaque = match fp with Footprint.Opaque _ -> true | _ -> false in
        if (not (Hr_query.Ast.mutating lstmt.Hr_query.Ast.stmt)) || opaque then begin
          flush run;
          []
        end
        else if
          List.for_all
            (fun (_, fp') -> Effect.commutes_fp fp' fp = Effect.Commute)
            run
        then (lstmt, fp) :: run
        else begin
          flush run;
          [ (lstmt, fp) ]
        end)
      [] stmts_fps
  in
  flush run;
  !diags

let effect_pass stmts_fps =
  let muts =
    List.filter
      (fun (l, _) -> Hr_query.Ast.mutating l.Hr_query.Ast.stmt)
      stmts_fps
  in
  conflict_pairs muts @ commuting_runs stmts_fps

let analyze_script ?catalog input =
  match Parser.parse input with
  | exception Parser.Parse_error { msg; loc } ->
    [ Diagnostic.error ~code:"E000" loc ("syntax error: " ^ msg) ]
  | exception Lexer.Lex_error { msg; loc } ->
    [ Diagnostic.error ~code:"E000" loc ("syntax error: " ^ msg) ]
  | stmts ->
    let sim =
      match catalog with
      | Some cat -> Sim_catalog.of_catalog cat
      | None -> Sim_catalog.empty ()
    in
    let find name =
      Option.map
        (fun (e : Sim_catalog.entry) -> e.Sim_catalog.rel)
        (Sim_catalog.find_relation sim name)
    in
    let stmts_fps, diags =
      List.fold_left
        (fun (fps, diags) lstmt ->
          (* footprint first: the statement itself then advances the sim *)
          let fp =
            try Effect.footprint ~find lstmt.Hr_query.Ast.stmt
            with _ -> Footprint.Opaque "footprint analysis failed"
          in
          let ds = analyze_statement sim lstmt in
          (* a statement the analyzer already rejects never executes, so
             it neither joins a commuting run nor pairs for W110 — treat
             it as a barrier instead of reasoning about its footprint *)
          let fp =
            if List.exists (fun d -> d.Diagnostic.severity = Diagnostic.Error) ds
            then Footprint.Opaque "statement has error diagnostics"
            else fp
          in
          ((lstmt, fp) :: fps, ds :: diags))
        ([], []) stmts
    in
    let stmts_fps = List.rev stmts_fps in
    let diags = List.concat (List.rev diags) in
    let effect_diags =
      (* the whole-script effect pass is advisory; never let it break a
         lint run *)
      try effect_pass stmts_fps with _ -> []
    in
    Diagnostic.sort (diags @ effect_diags)
