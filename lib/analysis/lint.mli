(** The HRQL static analyzer ("hrdb lint").

    Checks a parsed script without executing it: DDL and DML are
    abstractly interpreted against a {!Sim_catalog} (schemas and
    hierarchy shapes plus script-asserted rows — no query is ever
    evaluated), and every problem is reported as a {!Diagnostic} with a
    stable code and a source span.

    Codes: E000 syntax error, E001 unknown relation, E002 arity
    mismatch, E003 domain mismatch, E004 ALL on an instance, E005 isa
    cycle, E006 incompatible schemas, E007 join on disjoint domains,
    E008 unknown name, E009 duplicate definition, E010 invalid
    hierarchy edit / ambiguous name, W101 redundant isa edge, W102 dead
    row, W103 shadowed negation, W104 ambiguity conflict, W105
    unsatisfiable selection, H201 bare class value, H202 projection
    drops exceptions. [docs/LINT.md] documents each with a minimal
    trigger.

    The {e dataflow} checks track asserted tuples, their signs and the
    hierarchy edits across the whole script (provenance lives in the
    {!Sim_catalog}): W106 dead write — a row the script asserts and then
    unconditionally destroys (exact [DELETE] or [DROP RELATION]) before
    any statement reads the relation; W107 no-op under flattening — an
    insert whose every atom already receives the same sign from the
    stored tuples (a patchwork of narrower rows or an exact duplicate;
    W102's single-generalization case is reported as W102); W108
    cross-statement contradiction — the same item asserted with opposite
    signs by two statements, where the later one silently overwrites;
    W109 exception erasing its generalization — a negation covering the
    {e entire} extension of a stored positive class tuple; H203 replica
    replay advisory — [CONSOLIDATE]/[EXPLICATE] are logged as source
    text and re-derived on replicas (verify with [hrdb fsck --against]).
    These checks only ever fire on rows the analyzed script itself
    asserted, never on pre-existing catalog data. *)

val analyze_script : ?catalog:Hierel.Catalog.t -> string -> Diagnostic.t list
(** Lex, parse and check a whole script. A lex/parse failure yields a
    single E000 diagnostic. When [catalog] is given, the analysis starts
    from a snapshot of it (copies — the live catalog is never touched);
    otherwise from an empty world. Diagnostics are sorted by location,
    then severity, then code. The analyzer never raises: statements
    whose checking fails internally produce an E999 diagnostic. *)

val analyze_statement :
  Sim_catalog.t -> Hr_query.Ast.located_statement -> Diagnostic.t list
(** Check one parsed statement against (and update) an existing
    simulated catalog — the REPL pre-flight entry point. Never raises. *)
