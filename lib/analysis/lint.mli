(** The HRQL static analyzer ("hrdb lint").

    Checks a parsed script without executing it: DDL and DML are
    abstractly interpreted against a {!Sim_catalog} (schemas and
    hierarchy shapes plus script-asserted rows — no query is ever
    evaluated), and every problem is reported as a {!Diagnostic} with a
    stable code and a source span.

    Codes: E000 syntax error, E001 unknown relation, E002 arity
    mismatch, E003 domain mismatch, E004 ALL on an instance, E005 isa
    cycle, E006 incompatible schemas, E007 join on disjoint domains,
    E008 unknown name, E009 duplicate definition, E010 invalid
    hierarchy edit / ambiguous name, W101 redundant isa edge, W102 dead
    row, W103 shadowed negation, W104 ambiguity conflict, W105
    unsatisfiable selection, H201 bare class value, H202 projection
    drops exceptions. [docs/LINT.md] documents each with a minimal
    trigger. *)

val analyze_script : ?catalog:Hierel.Catalog.t -> string -> Diagnostic.t list
(** Lex, parse and check a whole script. A lex/parse failure yields a
    single E000 diagnostic. When [catalog] is given, the analysis starts
    from a snapshot of it (copies — the live catalog is never touched);
    otherwise from an empty world. Diagnostics are sorted by location,
    then severity, then code. The analyzer never raises: statements
    whose checking fails internally produce an E999 diagnostic. *)

val analyze_statement :
  Sim_catalog.t -> Hr_query.Ast.located_statement -> Diagnostic.t list
(** Check one parsed statement against (and update) an existing
    simulated catalog — the REPL pre-flight entry point. Never raises. *)
