(** Performance lints P300–P305.

    Each check prices the statement's (optimized) query plans with
    {!Cost_model} over the simulated catalog and flags shapes the cost
    model predicts to be needlessly expensive. Every diagnostic carries
    {!Diagnostic.Perf} severity — always advisory, never affecting exit
    codes — and quotes the estimate that triggered it, so the number a
    reader sees is the number the model computed. Thresholds live in
    {!Cost_model} and are documented in [docs/COST.md]. *)

module Ast = Hr_query.Ast

(* Structural key of an estimated subtree — repeated derivations have
   equal keys (the label vocabulary includes operands, e.g.
   [select[a=v]]). *)
let rec key (n : Cost_model.node) =
  n.Cost_model.n_label
  ^ "(" ^ String.concat "," (List.map key n.Cost_model.n_children) ^ ")"

let rec base_rels acc (n : Cost_model.node) =
  let acc =
    match n.Cost_model.n_kind with
    | Cost_model.Scan name -> if List.mem name acc then acc else name :: acc
    | _ -> acc
  in
  List.fold_left base_rels acc n.Cost_model.n_children

let rec has_selection (n : Cost_model.node) =
  (match n.Cost_model.n_kind with Cost_model.Selection _ -> true | _ -> false)
  || List.exists has_selection n.Cost_model.n_children

(* P302 only fires on intermediates big enough to matter. *)
let reorder_min_rows = 4.0

(* P305: a sharded router restricts a query's scatter to the cover of
   the selected subtree only when the plan selects a relation on its
   {e first} attribute — the sharding key (docs/SHARDING.md). A query
   that selects the relation on other attributes alone still fans out
   to every shard, which usually surprises: the user restricted the
   query, just not on the routable coordinate. Bare unselected scans
   are not flagged (nothing suggests a restriction was intended). *)
let check_routing ~emit src expr =
  let first_attr name =
    match src.Cost_model.find name with
    | None -> None
    | Some { Cost_model.rel; _ } ->
      let schema = Hierel.Relation.schema rel in
      if Hierel.Schema.arity schema = 0 then None
      else
        Some
          (Hr_util.Symbol.name
             (Hierel.Schema.attrs schema).(0).Hierel.Schema.name)
  in
  let rec walk sels (e : Ast.query_expr) =
    match e.Ast.expr with
    | Ast.Rel name -> (
      match first_attr name with
      | Some first when sels <> [] && not (List.mem first sels) ->
        emit
          (Diagnostic.perff ~code:"P305" e.Ast.eloc
             ~related:
               [
                 Printf.sprintf
                   "%s is routed by its first attribute %s; selections on [%s] \
                    cannot restrict the scatter"
                   name first
                   (String.concat ", " (List.rev sels));
               ]
             "unrouted scan: under a sharded deployment this query fans out \
              to every shard because nothing selects %S on its sharding key"
             name)
      | _ -> ())
    | Ast.Select (inner, attr, _) -> walk (attr :: sels) inner
    | Ast.Project (inner, _)
    | Ast.Rename (inner, _, _)
    | Ast.Consolidated inner
    | Ast.Explicated (inner, _) ->
      walk sels inner
    | Ast.Join (a, b)
    | Ast.Union (a, b)
    | Ast.Intersect (a, b)
    | Ast.Except (a, b) ->
      walk sels a;
      walk sels b
  in
  walk [] expr

let check_expr ~emit src expr =
  match Cost_model.plan src expr with
  | Error _ -> () (* unknown relation: E001 already reported *)
  | Ok (opt, root) ->
    check_routing ~emit src opt;
    let open Cost_model in
    let seen_rederive = Hashtbl.create 8 in
    let counts = Hashtbl.create 8 in
    let rec count n =
      let k = key n in
      Hashtbl.replace counts k (1 + Option.value ~default:0 (Hashtbl.find_opt counts k));
      List.iter count n.n_children
    in
    count root;
    let rec walk n =
      (match n.n_kind, n.n_children with
      | Joining { cartesian = true }, [ a; b ]
        when n.n_rows >= cartesian_rows_threshold ->
        emit
          (Diagnostic.perff ~code:"P300" n.n_loc
             ~related:
               [
                 Printf.sprintf
                   "estimated %.0f x %.0f = %.0f rows and %.1f work units"
                   a.n_rows b.n_rows n.n_rows n.n_cost;
               ]
             "cartesian join: the operands share no attribute, so every pair \
              of tuples combines")
      | Joining _, [ a; b ] ->
        let shared_base =
          List.filter (fun r -> List.mem r (base_rels [] b)) (base_rels [] a)
        in
        (match shared_base with
        | rel :: _ ->
          emit
            (Diagnostic.perff ~code:"P304" n.n_loc
               ~related:
                 [
                   Printf.sprintf
                     "estimated %.0f x %.0f pairs = %.1f work units"
                     a.n_rows b.n_rows n.n_cost;
                 ]
               "self-join: %S appears on both sides, a recursive pattern the \
                optimizer cannot reorder or push selections through" rel)
        | [] -> ())
      | Flatten _, _
        when n.n_rows > explicate_cone_threshold && not (has_selection n) ->
        emit
          (Diagnostic.perff ~code:"P301" n.n_loc
             ~related:
               [
                 Printf.sprintf
                   "estimated extension: %.0f rows (threshold %.0f)" n.n_rows
                   explicate_cone_threshold;
               ]
             "EXPLICATE over a large cone with no restricting predicate: the \
              whole atomic extension materializes")
      | Selection { selectivity = outer_sel }, [ inner ] -> (
        match inner.n_kind with
        | Selection { selectivity = inner_sel }
          when inner_sel > outer_sel +. 0.25 && inner.n_rows >= reorder_min_rows
          ->
          emit
            (Diagnostic.perff ~code:"P302" n.n_loc
               ~related:
                 [
                   Printf.sprintf
                     "estimated selectivity %.2f before %.2f; the intermediate \
                      holds %.0f rows"
                     inner_sel outer_sel inner.n_rows;
                 ]
               "predicate ordering: the unselective conjunct %s is evaluated \
                before the more selective %s" inner.n_label n.n_label)
        | _ -> ())
      | _ -> ());
      (match n.n_kind with
      | Scan _ -> ()
      | _ ->
        let k = key n in
        if
          Option.value ~default:0 (Hashtbl.find_opt counts k) >= 2
          && n.n_cost >= rederive_cost_threshold
          && not (Hashtbl.mem seen_rederive k)
        then begin
          Hashtbl.add seen_rederive k ();
          emit
            (Diagnostic.perff ~code:"P303" n.n_loc
               ~related:
                 [
                   Printf.sprintf
                     "subplan %s: estimated %.1f work units per derivation, \
                      derived %d times"
                     n.n_label n.n_cost
                     (Option.value ~default:0 (Hashtbl.find_opt counts k));
                 ]
               "repeated re-derivation: an identical subplan is computed more \
                than once; LET (or CONSOLIDATE on the stored relation) would \
                cache it")
        end);
      List.iter walk n.n_children
    in
    walk root

(* Query expressions worth pricing. EXPLAIN statements are exempt: the
   user is already inspecting the plan. *)
let exprs_of = function
  | Ast.Select_query { expr; _ } | Ast.Let_binding { expr; _ }
  | Ast.Count { expr; _ } ->
    [ expr ]
  | Ast.Diff { prev; next } -> [ prev; next ]
  | _ -> []

let check sim ~emit { Ast.stmt; sloc } =
  let src = Cost_model.of_sim sim in
  List.iter (check_expr ~emit src) (exprs_of stmt);
  (* the statement form of EXPLICATE can carry no restricting predicate
     at all, so only the cone size matters *)
  match stmt with
  | Ast.Explicate { rel; over } -> (
    match Sim_catalog.find_relation sim rel with
    | Some { Sim_catalog.rel = r; _ } ->
      let rows = Cost_model.extension_rows ?over r in
      if float_of_int rows > Cost_model.explicate_cone_threshold then
        emit
          (Diagnostic.perff ~code:"P301" sloc
             ~related:
               [
                 Printf.sprintf "estimated extension: %d rows (threshold %.0f)"
                   rows Cost_model.explicate_cone_threshold;
               ]
             "EXPLICATE over a large cone with no restricting predicate: the \
              whole atomic extension materializes")
    | None -> ())
  | _ -> ()
