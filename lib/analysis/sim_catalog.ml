module Hierarchy = Hr_hierarchy.Hierarchy
module Symbol = Hr_util.Symbol
open Hierel

type entry = { rel : Relation.t; exact : bool }

type write = {
  w_item : Item.t;
  w_sign : Types.sign;
  w_loc : Hr_query.Loc.t;
  w_stmt : int;
}

type t = {
  mutable hierarchies : Hierarchy.t list;
  mutable relations : (string * entry) list;
  mutable poisoned : string list;
  (* Dataflow provenance: which statement asserted which tuple, and when
     each relation was last read — the substrate of the whole-script
     checks (dead writes, cross-statement contradictions). *)
  mutable stmt_id : int;
  mutable writes : (string * write list) list;  (* per relation, newest first *)
  mutable reads : (string * int) list;  (* relation -> last reading stmt *)
}

let empty () =
  {
    hierarchies = [];
    relations = [];
    poisoned = [];
    stmt_id = 0;
    writes = [];
    reads = [];
  }

let hierarchies t = t.hierarchies

let find_hierarchy t domain =
  List.find_opt
    (fun h -> String.equal (Symbol.name (Hierarchy.domain h)) domain)
    t.hierarchies

let define_hierarchy t h = t.hierarchies <- t.hierarchies @ [ h ]

let hierarchies_containing t name =
  List.filter (fun h -> Hierarchy.mem h name) t.hierarchies

let find_relation t name = List.assoc_opt name t.relations

let define_relation t ~exact rel =
  t.relations <- t.relations @ [ (Relation.name rel, { rel; exact }) ]

let replace_relation t entry =
  let name = Relation.name entry.rel in
  t.relations <-
    List.map (fun (n, e) -> if n = name then (n, entry) else (n, e)) t.relations

let drop_relation t name =
  t.relations <- List.filter (fun (n, _) -> n <> name) t.relations

(* ---- dataflow provenance -------------------------------------------- *)

let begin_statement t =
  t.stmt_id <- t.stmt_id + 1;
  t.stmt_id

let current_statement t = t.stmt_id

let note_read t rel =
  t.reads <- (rel, t.stmt_id) :: List.remove_assoc rel t.reads

let last_read t rel = Option.value ~default:0 (List.assoc_opt rel t.reads)

let writes_of t rel = List.rev (Option.value ~default:[] (List.assoc_opt rel t.writes))

let record_write t rel item sign loc =
  let w = { w_item = item; w_sign = sign; w_loc = loc; w_stmt = t.stmt_id } in
  let ws =
    w
    :: List.filter
         (fun w' -> not (Item.equal w'.w_item item))
         (Option.value ~default:[] (List.assoc_opt rel t.writes))
  in
  t.writes <- (rel, ws) :: List.remove_assoc rel t.writes

let find_write t rel item =
  List.find_opt
    (fun w -> Item.equal w.w_item item)
    (Option.value ~default:[] (List.assoc_opt rel t.writes))

let forget_write t rel item =
  match List.assoc_opt rel t.writes with
  | None -> ()
  | Some ws ->
    t.writes <-
      (rel, List.filter (fun w -> not (Item.equal w.w_item item)) ws)
      :: List.remove_assoc rel t.writes

let forget_writes t rel = t.writes <- List.remove_assoc rel t.writes

let poison t name =
  if not (List.mem name t.poisoned) then t.poisoned <- name :: t.poisoned

let is_poisoned t name = List.mem name t.poisoned

(* Rebuild a relation over copied hierarchies. [Hierarchy.copy] keeps
   node ids stable, so the stored items transfer coordinate-for-
   coordinate onto the copies. *)
let rebuild_relation copies r =
  let schema = Relation.schema r in
  let copy_of h =
    match
      List.find_opt
        (fun (orig, _) -> orig == h)
        copies
    with
    | Some (_, c) -> c
    | None -> Hierarchy.copy h
  in
  let attrs =
    List.mapi
      (fun i name -> (name, copy_of (Schema.hierarchy schema i)))
      (Schema.names schema)
  in
  let schema' = Schema.make attrs in
  Relation.fold
    (fun t acc -> Relation.add acc (Item.make schema' (Item.coords t.Relation.item)) t.Relation.sign)
    r
    (Relation.empty ~name:(Relation.name r) schema')

let of_catalog cat =
  let copies = List.map (fun h -> (h, Hierarchy.copy h)) (Catalog.hierarchies cat) in
  {
    hierarchies = List.map snd copies;
    relations =
      List.map
        (fun r -> (Relation.name r, { rel = rebuild_relation copies r; exact = true }))
        (Catalog.relations cat);
    poisoned = [];
    stmt_id = 0;
    writes = [];
    reads = [];
  }
