(* SARIF 2.1.0 output for [hrdb lint --format sarif]: one run, one
   result per diagnostic, rule metadata pulled from {!Codes} for every
   code that actually fired. The point is CI integration — GitHub code
   scanning and most SARIF viewers render these as inline annotations. *)

module J = Hr_obs.Jsonout
module Loc = Hr_query.Loc

let level_of = function
  | Diagnostic.Error -> "error"
  | Diagnostic.Warning -> "warning"
  | Diagnostic.Hint | Diagnostic.Perf -> "note"

let region (loc : Loc.t) =
  if Loc.is_dummy loc then J.Obj [ ("startLine", J.Int 1) ]
  else
    J.Obj
      [
        ("startLine", J.Int loc.Loc.lo.Loc.line);
        ("startColumn", J.Int loc.Loc.lo.Loc.col);
        ("endLine", J.Int loc.Loc.hi.Loc.line);
        ("endColumn", J.Int loc.Loc.hi.Loc.col);
      ]

let result file (d : Diagnostic.t) =
  let text =
    match d.Diagnostic.related with
    | [] -> d.Diagnostic.message
    | notes -> d.Diagnostic.message ^ " (" ^ String.concat "; " notes ^ ")"
  in
  J.Obj
    [
      ("ruleId", J.String d.Diagnostic.code);
      ("level", J.String (level_of d.Diagnostic.severity));
      ("message", J.Obj [ ("text", J.String text) ]);
      ( "locations",
        J.List
          [
            J.Obj
              [
                ( "physicalLocation",
                  J.Obj
                    [
                      ( "artifactLocation",
                        J.Obj [ ("uri", J.String file) ] );
                      ("region", region d.Diagnostic.loc);
                    ] );
              ];
          ] );
    ]

let rule code =
  match Codes.find code with
  | None -> J.Obj [ ("id", J.String code) ]
  | Some entry ->
    J.Obj
      [
        ("id", J.String code);
        ("name", J.String entry.Codes.title);
        ( "shortDescription",
          J.Obj [ ("text", J.String entry.Codes.title) ] );
        ( "fullDescription",
          J.Obj [ ("text", J.String entry.Codes.meaning) ] );
        ("help", J.Obj [ ("text", J.String entry.Codes.fix) ]);
      ]

(* Aggregates every (file, diagnostics) pair into a single run, the
   shape CI upload actions expect for one analysis step. The driver
   identity is parametric so [hrdb fsck] can reuse the emitter. *)
let render ?(tool = "hrdb-lint") ?(info_uri = "docs/LINT.md") results =
  let fired =
    List.sort_uniq String.compare
      (List.concat_map
         (fun (_, ds) -> List.map (fun d -> d.Diagnostic.code) ds)
         results)
  in
  J.to_string
    (J.Obj
       [
         ("version", J.String "2.1.0");
         ( "$schema",
           J.String
             "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json"
         );
         ( "runs",
           J.List
             [
               J.Obj
                 [
                   ( "tool",
                     J.Obj
                       [
                         ( "driver",
                           J.Obj
                             [
                               ("name", J.String tool);
                               ("informationUri", J.String info_uri);
                               ("rules", J.List (List.map rule fired));
                             ] );
                       ] );
                   ( "results",
                     J.List
                       (List.concat_map
                          (fun (file, ds) -> List.map (result file) ds)
                          results) );
                 ];
             ] );
       ])
  ^ "\n"
