(** `EXPLAIN ESTIMATE`: static plan pricing, rendered like the output of
    [EXPLAIN ANALYZE] but with estimated rows and cumulative cost per
    node. Registers itself as the {!Hr_query.Eval} estimator at
    module-init time, so any executable linking this library evaluates
    [EXPLAIN ESTIMATE <expr>;] with no execution side effects. *)

val render : Cost_model.node -> string
(** The indented per-node tree (no [plan:] header). *)

val explain :
  Cost_model.source -> Hr_query.Ast.query_expr -> (string, string) result
(** Full report: [plan:] header, per-node tree, total cost footer. *)

val explain_live :
  Hierel.Catalog.t -> Hr_query.Ast.query_expr -> (string, string) result
(** {!explain} over {!Cost_model.of_catalog} — the registered hook. *)

val ensure_registered : unit -> unit
(** No-op whose call forces this module to be linked (and therefore the
    estimator hook installed) in executables that would otherwise not
    reference it. *)
