(** Abstract effect footprints for HRQL statements.

    A footprint over-approximates what a statement touches: a set of
    (relation, item-cone, sign, read|write) atoms, with item coordinates
    resolved to hierarchy DAG nodes (a node stands for its whole cone —
    itself plus every transitive descendant, served by the closure index
    in [lib/graph]). Anything unresolvable widens to [Top] (⊤); DDL is
    [Opaque] because it rewrites the hierarchies the cones are expressed
    in. Semantics and the soundness argument: docs/EFFECTS.md. *)

type cone =
  | Top  (** unresolved: conservatively covers every item *)
  | Node of Hr_hierarchy.Hierarchy.t * Hr_hierarchy.Hierarchy.node

type mode = Read | Write

type atom = {
  rel : string;
  mode : mode;
  sign : Hierel.Types.sign option;  (** [None] for reads and DELETE rows *)
  cones : cone array option;
      (** one cone per attribute in schema order; [None] when even the
          relation's arity is unknown (the widest possible atom) *)
}

type t =
  | Atoms of atom list
  | Opaque of string  (** why nothing can be said (e.g. DDL) *)

val of_statement :
  find:(string -> Hierel.Relation.t option) -> Hr_query.Ast.statement -> t
(** [find] resolves relation names against whatever catalog the caller
    trusts (live {!Hierel.Catalog}, analyzer {!Sim_catalog}, router
    local catalog) — cones from two footprints are only comparable when
    both were resolved through the same catalog state. *)

val of_source : find:(string -> Hierel.Relation.t option) -> string -> t
(** Footprint of a whole script (e.g. one WAL record): the union of its
    statements' atoms; [Opaque] if any statement is, or if the source
    does not parse. Never raises. *)

val relations : t -> string list option
(** Sorted distinct relation names touched; [None] for [Opaque]. *)

val has_write : t -> bool
(** Whether any atom writes ([Opaque] counts as writing everything). *)

type cone_cmp =
  | Disjoint  (** some coordinate pair provably never intersects *)
  | Overlap  (** every coordinate pair provably intersects *)
  | May_overlap  (** at least one ⊤/unknown coordinate, no disjoint one *)

val compare_cones : atom -> atom -> cone_cmp
(** Coordinate-wise, via {!Hr_hierarchy.Hierarchy.intersects}. Only
    meaningful for atoms over the same relation. *)

val subsumes : atom -> atom -> bool
(** Whether the first atom's item covers the second's, coordinate-wise. *)

val incomparable : atom -> atom -> bool
(** Neither subsumes the other — the shape behind order-dependent
    ambiguity acceptance (and lint W110). *)

val pp_atom : Format.formatter -> atom -> unit
val pp : Format.formatter -> t -> unit
val to_string : t -> string
