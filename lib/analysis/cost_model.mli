(** Hierarchy-aware cardinality and cost model for optimized HRQL plans.

    Prices a plan {e statically} — no operator is evaluated, no tuple
    materialized. Statistics come from a {!source}, which abstracts over
    the two catalogs the analyzer meets: the live {!Hierel.Catalog.t}
    (per-class extension counts, exception counts and cone sizes read
    straight from the stored relations and hierarchies, plus actual row
    counts fed back by [EXPLAIN ANALYZE]) and the lint-time
    {!Sim_catalog} (symbolic counts from the rows the analyzed script
    itself asserts). Costs are abstract work units: 1 unit ≈ one tuple
    visit or one closure-index probe. See [docs/COST.md]. *)

(** {1 Statistics sources} *)

type input = { rel : Hierel.Relation.t; exact : bool }

type source = {
  find : string -> input option;
  observed : rel:string -> label:string -> int option;
  hierarchies : unit -> Hr_hierarchy.Hierarchy.t list;
}

val of_catalog : Hierel.Catalog.t -> source
(** Live statistics; [observed] consults the catalog's feedback store
    ({!Hierel.Catalog.observed_stat}). *)

val of_sim : Sim_catalog.t -> source
(** Symbolic statistics from shadow relations; [observed] is always
    [None]. Shadow relations carry their {e exact} flag through, so
    rows asserted by the script itself still price exactly. *)

(** {1 Primitive statistics} *)

val extension_count : Hr_hierarchy.Hierarchy.t -> Hr_hierarchy.Hierarchy.node -> int
(** Atomic extension size: 1 for an instance, the leaf count of the cone
    for a class. *)

val cone_size : Hr_hierarchy.Hierarchy.t -> Hr_hierarchy.Hierarchy.node -> int
(** Nodes isa-reachable from the node, inclusive. *)

val domain_width : Hr_hierarchy.Hierarchy.t -> int
(** Number of instances in the hierarchy (at least 1). *)

val avg_extension : Hr_hierarchy.Hierarchy.t -> float
(** Mean atomic extension over all nodes — the per-attribute expansion a
    flattening applies when actual coordinates are unknown. *)

val stored_rows : Hierel.Relation.t -> int
val exception_count : Hierel.Relation.t -> int
val is_flat : Hierel.Relation.t -> bool

val extension_rows : ?over:string list -> Hierel.Relation.t -> int
(** Estimated flat cardinality of [EXPLICATE rel]: per stored tuple, the
    product of the flattened coordinates' atomic extensions; negated
    tuples subtract. Exact when the relation is flat; an upper bound
    when cones overlap. *)

(** {1 The annotated plan} *)

type node = {
  n_label : string;  (** same operator vocabulary as [EXPLAIN ANALYZE] *)
  n_loc : Hr_query.Loc.t;
  n_rows : float;  (** estimated output rows *)
  n_cost : float;  (** cumulative work units, inclusive of children *)
  n_exact : bool;  (** the row estimate is provably exact *)
  n_kind : kind;
  n_children : node list;
}

and kind =
  | Scan of string
  | Selection of { selectivity : float }
  | Joining of { cartesian : bool }
  | Flatten of { expansion : float }
  | Opaque

val plan :
  source -> Hr_query.Ast.query_expr -> (Hr_query.Ast.query_expr * node, string) result
(** Optimize the expression ({!Hr_query.Optimizer.optimize}) and price
    the optimized plan. Returns the optimized plan alongside the
    annotated root so callers can pair estimate nodes with the plan (or
    with [EXPLAIN ANALYZE] output, which optimizes identically).
    [Error] names an unknown relation. Never evaluates the plan. *)

(** {1 Lint thresholds} (P300/P301/P303; documented in [docs/COST.md]) *)

val cartesian_rows_threshold : float
val explicate_cone_threshold : float
val rederive_cost_threshold : float
