(** Static checking of HRQL statements: abstract interpretation of DDL
    and DML against the simulated catalog. DDL statements update the sim
    so later statements see their effects; DML updates shadow relations
    (schema + asserted rows) but never evaluates a query.

    Checks mirror [Eval.exec] failure modes plus the advisory analyses
    (dead rows, shadowed negations, ambiguity conflicts, bare-class
    hints) the evaluator does not perform. *)

module Hierarchy = Hr_hierarchy.Hierarchy
module Ast = Hr_query.Ast
open Hierel

(* Content-sensitive analyses enumerate atomic extensions; skip when the
   extension would exceed this bound. *)
let extension_cap = 256

let name_defined sim name =
  Sim_catalog.hierarchies_containing sim name <> []
  || Option.is_some (Sim_catalog.find_hierarchy sim name)

(* A new class/instance name must be globally fresh, like the
   evaluator's catalog requires for lookup by member name to work. *)
let check_fresh_name sim ~loc ~emit name =
  if name_defined sim name then begin
    emit
      (Diagnostic.errorf ~code:"E009" loc
         "%S is already defined; class and instance names must be unique" name);
    false
  end
  else true

(* Parents for CREATE CLASS/INSTANCE: all known, all in one hierarchy,
   none an instance. Returns the hierarchy when usable. *)
let check_parents sim ~loc ~emit ~kind name parents =
  match parents with
  | [] -> None
  | first :: _ -> (
    match Resolve.hierarchy_of_member sim ~loc ~emit first with
    | None -> None
    | Some h ->
      let ok =
        List.for_all
          (fun p ->
            match Hierarchy.find h p with
            | None ->
              (if Sim_catalog.hierarchies_containing sim p = [] then
                 emit
                   (Diagnostic.errorf ~code:"E008" loc
                      "unknown parent %S for %s %s" p kind name)
               else
                 emit
                   (Diagnostic.errorf ~code:"E003" loc
                      "parent %S of %s %s is not in domain %s" p kind name
                      (Resolve.domain_name h)));
              false
            | Some node ->
              if Hierarchy.is_instance h node then begin
                emit
                  (Diagnostic.errorf ~code:"E010" loc
                     "%S is an instance and cannot have children" p);
                false
              end
              else true)
          parents
      in
      if ok then Some h else None)

(* W102: the new row is implied by a stored same-sign row, and no
   opposite-sign row intersects it — so it can neither change a verdict
   nor serve as a disambiguating assertion (an intersecting opposite row
   can make an otherwise-implied row load-bearing, as with the third
   tuple of the paper's Respects relation). *)
let dead_row schema rel item sign =
  let tuples = Relation.tuples rel in
  List.exists
    (fun (t : Relation.tuple) ->
      t.Relation.sign = sign && Item.strictly_subsumes schema t.Relation.item item)
    tuples
  && not
       (List.exists
          (fun (t' : Relation.tuple) ->
            t'.Relation.sign <> sign && Item.intersects schema t'.Relation.item item)
          tuples)

let extension_size schema item =
  let n = ref 1 in
  (try
     Array.iteri
       (fun i c ->
         let h = Schema.hierarchy schema i in
         n := !n * List.length (Hierarchy.leaves_under h c);
         if !n > extension_cap then raise Exit)
       (Item.coords item)
   with Exit -> n := extension_cap + 1);
  !n

(* W103: a negated row every atom of which is re-covered by a strictly
   more specific positive row — under off-path preemption the negation
   never wins anywhere. *)
let shadowed_negation schema rel item =
  extension_size schema item <= extension_cap
  &&
  let atoms = Item.atomic_extension schema item in
  atoms <> []
  && List.for_all
       (fun atom ->
         List.exists
           (fun (t : Relation.tuple) ->
             t.Relation.sign = Types.Pos
             && Item.strictly_subsumes schema item t.Relation.item
             && Item.subsumes schema t.Relation.item atom)
           (Relation.tuples rel))
       atoms

let check_row_values sim schema ~loc ~emit rel_name row_index values =
  if List.length values <> Schema.arity schema then begin
    emit
      (Diagnostic.errorf ~code:"E002" loc
         "relation %s has arity %d but row %d has %d value(s)" rel_name
         (Schema.arity schema) row_index (List.length values));
    None
  end
  else
    let coords =
      List.mapi
        (fun i v ->
          let h = Schema.hierarchy schema i in
          match Resolve.value sim h ~loc ~emit v with
          | None -> None
          | Some node ->
            (match v with
            | Ast.Atom name when Hierarchy.is_class h node ->
              emit
                (Diagnostic.hintf ~code:"H201" loc
                   "%S is a class; the row applies to every member — write ALL \
                    %s if that is intended"
                   name name)
            | _ -> ());
            Some node)
        values
    in
    if List.for_all Option.is_some coords then
      Some (Item.make schema (Array.of_list (List.map Option.get coords)))
    else None

let check_insert sim ~loc ~emit rel rows =
  match Sim_catalog.find_relation sim rel with
  | None ->
    if not (Sim_catalog.is_poisoned sim rel) then
      emit (Diagnostic.errorf ~code:"E001" loc "unknown relation %S" rel)
  | Some entry ->
    let schema = Relation.schema entry.Sim_catalog.rel in
    let was_consistent =
      entry.Sim_catalog.exact && Integrity.is_consistent entry.Sim_catalog.rel
    in
    let shadow = ref entry.Sim_catalog.rel in
    List.iteri
      (fun i { Ast.sign; values } ->
        match check_row_values sim schema ~loc ~emit rel (i + 1) values with
        | None -> ()
        | Some item ->
          if entry.Sim_catalog.exact then begin
            (match Relation.find !shadow item with
            | Some sign' when sign' <> sign ->
              emit
                (Diagnostic.warningf ~code:"W104" loc
                   "row %d directly contradicts a stored tuple: %s is already \
                    asserted with the opposite sign in %s"
                   (i + 1)
                   (Item.to_string schema item)
                   rel)
            | _ ->
              if dead_row schema !shadow item sign then
                emit
                  (Diagnostic.warningf ~code:"W102" loc
                     "row %d is dead: %s is already implied by a more general \
                      tuple of the same sign in %s"
                     (i + 1)
                     (Item.to_string schema item)
                     rel));
            shadow := Relation.set !shadow item sign;
            if sign = Types.Neg && shadowed_negation schema !shadow item then
              emit
                (Diagnostic.warningf ~code:"W103" loc
                   "row %d: the negation on %s is shadowed — every instance it \
                    covers is re-asserted by a more specific positive tuple"
                   (i + 1)
                   (Item.to_string schema item))
          end)
      rows;
    if entry.Sim_catalog.exact then begin
      (if was_consistent then
         match Integrity.first_conflict !shadow with
         | Some c ->
           emit
             (Diagnostic.warningf ~code:"W104" loc
                "insert leaves %s ambiguous: %s" rel
                (Format.asprintf "%a" (Integrity.pp_conflict schema) c))
         | None -> ());
      Sim_catalog.replace_relation sim { entry with Sim_catalog.rel = !shadow }
    end

let check_values_against sim ~loc ~emit rel values =
  match Sim_catalog.find_relation sim rel with
  | None ->
    if not (Sim_catalog.is_poisoned sim rel) then
      emit (Diagnostic.errorf ~code:"E001" loc "unknown relation %S" rel);
    None
  | Some entry ->
    let schema = Relation.schema entry.Sim_catalog.rel in
    (match check_row_values sim schema ~loc ~emit rel 1 values with
    | Some item -> Some (entry, item)
    | None -> None)

let check_relation_exists sim ~loc ~emit rel =
  match Sim_catalog.find_relation sim rel with
  | Some entry -> Some entry
  | None ->
    if not (Sim_catalog.is_poisoned sim rel) then
      emit (Diagnostic.errorf ~code:"E001" loc "unknown relation %S" rel);
    None

let infer_schema sim ~emit expr = Expr_check.infer sim ~emit expr

let check sim ~emit { Ast.stmt; sloc = loc } =
  match stmt with
  | Ast.Create_domain name ->
    if Option.is_some (Sim_catalog.find_hierarchy sim name) then
      emit (Diagnostic.errorf ~code:"E009" loc "domain %S already exists" name)
    else if name_defined sim name then
      emit
        (Diagnostic.errorf ~code:"E009" loc
           "%S is already defined as a class or instance" name)
    else Sim_catalog.define_hierarchy sim (Hierarchy.create name)
  | Ast.Create_class { name; parents } ->
    let fresh = check_fresh_name sim ~loc ~emit name in
    (match check_parents sim ~loc ~emit ~kind:"class" name parents with
    | Some h when fresh -> ignore (Hierarchy.add_class h ~parents name)
    | _ -> ())
  | Ast.Create_instance { name; parents } ->
    let fresh = check_fresh_name sim ~loc ~emit name in
    (match check_parents sim ~loc ~emit ~kind:"instance" name parents with
    | Some h when fresh -> ignore (Hierarchy.add_instance h ~parents name)
    | _ -> ())
  | Ast.Create_isa { sub; super } -> (
    match Resolve.hierarchy_of_member sim ~loc ~emit super with
    | None -> ()
    | Some h -> (
      match Hierarchy.find h sub with
      | None ->
        if Sim_catalog.hierarchies_containing sim sub = [] then
          emit (Diagnostic.errorf ~code:"E008" loc "unknown class or instance %S" sub)
        else
          emit
            (Diagnostic.errorf ~code:"E003" loc
               "%S is not in domain %s; isa edges cannot cross domains" sub
               (Resolve.domain_name h))
      | Some sub_node ->
        let super_node = Hierarchy.find_exn h super in
        if Hierarchy.subsumes h sub_node super_node then
          emit
            (Diagnostic.errorf ~code:"E005" loc
               "isa edge %s -> %s would create a cycle: %s already subsumes %s"
               super sub sub super)
        else begin
          let before = Hierarchy.validate h in
          (try Hierarchy.add_isa h ~sub ~super
           with Hierarchy.Error msg ->
             emit (Diagnostic.errorf ~code:"E010" loc "%s" msg));
          List.iter
            (fun issue ->
              if not (List.mem issue before) then
                match issue with
                | Hierarchy.Redundant_isa_edge (a, b) ->
                  emit
                    (Diagnostic.warningf ~code:"W101" loc
                       "isa edge %s -> %s is redundant (implied by another \
                        path); it changes off-path preemption"
                       (Hierarchy.node_label h a) (Hierarchy.node_label h b)))
            (Hierarchy.validate h)
        end))
  | Ast.Create_preference { weaker; stronger } -> (
    match Resolve.hierarchy_of_member sim ~loc ~emit weaker with
    | None -> ()
    | Some h ->
      if not (Hierarchy.mem h stronger) then begin
        if Sim_catalog.hierarchies_containing sim stronger = [] then
          emit
            (Diagnostic.errorf ~code:"E008" loc "unknown class or instance %S"
               stronger)
        else
          emit
            (Diagnostic.errorf ~code:"E003" loc
               "%S is not in domain %s; preference edges cannot cross domains"
               stronger (Resolve.domain_name h))
      end
      else
        try Hierarchy.add_preference h ~weaker ~stronger
        with Hierarchy.Error msg ->
          emit (Diagnostic.errorf ~code:"E010" loc "%s" msg))
  | Ast.Create_relation { name; attrs } ->
    let dup_rel = Option.is_some (Sim_catalog.find_relation sim name) in
    if dup_rel then
      emit (Diagnostic.errorf ~code:"E009" loc "relation %S already exists" name);
    let dup_attr =
      List.exists
        (fun (a, _) ->
          List.length (List.filter (fun (a', _) -> a = a') attrs) > 1)
        attrs
    in
    if dup_attr then
      emit
        (Diagnostic.errorf ~code:"E009" loc
           "relation %S declares a duplicate attribute name" name);
    let resolved =
      List.map
        (fun (a, d) ->
          match Sim_catalog.find_hierarchy sim d with
          | Some h -> Some (a, h)
          | None ->
            emit
              (Diagnostic.errorf ~code:"E008" loc
                 "unknown domain %S for attribute %S" d a);
            None)
        attrs
    in
    if
      (not dup_rel) && (not dup_attr)
      && List.for_all Option.is_some resolved
      && resolved <> []
    then
      Sim_catalog.define_relation sim ~exact:true
        (Relation.empty ~name (Schema.make (List.map Option.get resolved)))
    else if not dup_rel then Sim_catalog.poison sim name
  | Ast.Drop_relation name -> (
    match Sim_catalog.find_relation sim name with
    | Some _ -> Sim_catalog.drop_relation sim name
    | None ->
      if not (Sim_catalog.is_poisoned sim name) then
        emit (Diagnostic.errorf ~code:"E001" loc "unknown relation %S" name))
  | Ast.Insert { rel; rows } -> check_insert sim ~loc ~emit rel rows
  | Ast.Delete { rel; rows } -> (
    match check_relation_exists sim ~loc ~emit rel with
    | None -> ()
    | Some entry ->
      let schema = Relation.schema entry.Sim_catalog.rel in
      let shadow = ref entry.Sim_catalog.rel in
      List.iteri
        (fun i values ->
          match check_row_values sim schema ~loc ~emit rel (i + 1) values with
          | Some item ->
            if entry.Sim_catalog.exact then shadow := Relation.remove !shadow item
          | None -> ())
        rows;
      if entry.Sim_catalog.exact then
        Sim_catalog.replace_relation sim { entry with Sim_catalog.rel = !shadow })
  | Ast.Select_query { expr; _ } -> ignore (infer_schema sim ~emit expr)
  | Ast.Let_binding { name; expr } -> (
    match infer_schema sim ~emit expr with
    | None -> Sim_catalog.poison sim name
    | Some attrs -> (
      let schema =
        Schema.make
          (List.map (fun a -> (a.Expr_check.aname, a.Expr_check.hier)) attrs)
      in
      let rel = Relation.empty ~name schema in
      match Sim_catalog.find_relation sim name with
      | Some _ ->
        Sim_catalog.replace_relation sim { Sim_catalog.rel; exact = false }
      | None -> Sim_catalog.define_relation sim ~exact:false rel))
  | Ast.Ask { rel; values; _ } ->
    ignore (check_values_against sim ~loc ~emit rel values)
  | Ast.Explain { rel; values } ->
    ignore (check_values_against sim ~loc ~emit rel values)
  | Ast.Consolidate name ->
    ignore (check_relation_exists sim ~loc ~emit name)
  | Ast.Explicate { rel; over } -> (
    match check_relation_exists sim ~loc ~emit rel with
    | None -> ()
    | Some entry ->
      let schema = Relation.schema entry.Sim_catalog.rel in
      (match over with
      | None -> ()
      | Some names ->
        List.iter
          (fun n ->
            if Option.is_none (Schema.find_index schema n) then
              emit
                (Diagnostic.errorf ~code:"E008" loc
                   "explication over unknown attribute %S of %s" n rel))
          names);
      (* explication rewrites contents; the shadow no longer tracks them *)
      Sim_catalog.replace_relation sim { entry with Sim_catalog.exact = false })
  | Ast.Check name -> ignore (check_relation_exists sim ~loc ~emit name)
  | Ast.Show_hierarchy name ->
    if Option.is_none (Sim_catalog.find_hierarchy sim name) then
      emit (Diagnostic.errorf ~code:"E008" loc "unknown domain %S" name)
  | Ast.Show_relations | Ast.Show_hierarchies -> ()
  | Ast.Explain_plan expr | Ast.Explain_analyze expr ->
    ignore (infer_schema sim ~emit expr)
  | Ast.Stats _ | Ast.Stats_reset -> ()
  | Ast.Count { expr; by } -> (
    match infer_schema sim ~emit expr, by with
    | Some attrs, Some attr ->
      if Option.is_none (Expr_check.find_attr attrs attr) then
        emit
          (Diagnostic.errorf ~code:"E008" loc
             "COUNT BY unknown attribute %S (schema is %s)" attr
             (Expr_check.pp_schema attrs))
    | _ -> ())
  | Ast.Diff { prev; next } -> (
    let sp = infer_schema sim ~emit prev and sn = infer_schema sim ~emit next in
    match sp, sn with
    | Some sp, Some sn when not (Expr_check.compatible sp sn) ->
      emit
        (Diagnostic.errorf ~code:"E006" loc
           "DIFF operands must have identical schemas: %s vs %s"
           (Expr_check.pp_schema sp) (Expr_check.pp_schema sn))
    | _ -> ())
