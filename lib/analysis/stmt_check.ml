(** Static checking of HRQL statements: abstract interpretation of DDL
    and DML against the simulated catalog. DDL statements update the sim
    so later statements see their effects; DML updates shadow relations
    (schema + asserted rows) but never evaluates a query.

    Checks mirror [Eval.exec] failure modes plus the advisory analyses
    (dead rows, shadowed negations, ambiguity conflicts, bare-class
    hints) the evaluator does not perform. *)

module Hierarchy = Hr_hierarchy.Hierarchy
module Ast = Hr_query.Ast
open Hierel

(* Content-sensitive analyses enumerate atomic extensions; skip when the
   extension would exceed this bound. *)
let extension_cap = 256

let name_defined sim name =
  Sim_catalog.hierarchies_containing sim name <> []
  || Option.is_some (Sim_catalog.find_hierarchy sim name)

(* A new class/instance name must be globally fresh, like the
   evaluator's catalog requires for lookup by member name to work. *)
let check_fresh_name sim ~loc ~emit name =
  if name_defined sim name then begin
    emit
      (Diagnostic.errorf ~code:"E009" loc
         "%S is already defined; class and instance names must be unique" name);
    false
  end
  else true

(* Parents for CREATE CLASS/INSTANCE: all known, all in one hierarchy,
   none an instance. Returns the hierarchy when usable. *)
let check_parents sim ~loc ~emit ~kind name parents =
  match parents with
  | [] -> None
  | first :: _ -> (
    match Resolve.hierarchy_of_member sim ~loc ~emit first with
    | None -> None
    | Some h ->
      let ok =
        List.for_all
          (fun p ->
            match Hierarchy.find h p with
            | None ->
              (if Sim_catalog.hierarchies_containing sim p = [] then
                 emit
                   (Diagnostic.errorf ~code:"E008" loc
                      "unknown parent %S for %s %s" p kind name)
               else
                 emit
                   (Diagnostic.errorf ~code:"E003" loc
                      "parent %S of %s %s is not in domain %s" p kind name
                      (Resolve.domain_name h)));
              false
            | Some node ->
              if Hierarchy.is_instance h node then begin
                emit
                  (Diagnostic.errorf ~code:"E010" loc
                     "%S is an instance and cannot have children" p);
                false
              end
              else true)
          parents
      in
      if ok then Some h else None)

(* W102: the new row is implied by a stored same-sign row, and no
   opposite-sign row intersects it — so it can neither change a verdict
   nor serve as a disambiguating assertion (an intersecting opposite row
   can make an otherwise-implied row load-bearing, as with the third
   tuple of the paper's Respects relation). *)
let dead_row schema rel item sign =
  let tuples = Relation.tuples rel in
  List.exists
    (fun (t : Relation.tuple) ->
      t.Relation.sign = sign && Item.strictly_subsumes schema t.Relation.item item)
    tuples
  && not
       (List.exists
          (fun (t' : Relation.tuple) ->
            t'.Relation.sign <> sign && Item.intersects schema t'.Relation.item item)
          tuples)

let extension_size schema item =
  let n = ref 1 in
  (try
     Array.iteri
       (fun i c ->
         let h = Schema.hierarchy schema i in
         n := !n * List.length (Hierarchy.leaves_under h c);
         if !n > extension_cap then raise Exit)
       (Item.coords item)
   with Exit -> n := extension_cap + 1);
  !n

(* W103: a negated row every atom of which is re-covered by a strictly
   more specific positive row — under off-path preemption the negation
   never wins anywhere. *)
let shadowed_negation schema rel item =
  extension_size schema item <= extension_cap
  &&
  let atoms = Item.atomic_extension schema item in
  atoms <> []
  && List.for_all
       (fun atom ->
         List.exists
           (fun (t : Relation.tuple) ->
             t.Relation.sign = Types.Pos
             && Item.strictly_subsumes schema item t.Relation.item
             && Item.subsumes schema t.Relation.item atom)
           (Relation.tuples rel))
       atoms

let check_row_values sim schema ~loc ~emit rel_name row_index values =
  if List.length values <> Schema.arity schema then begin
    emit
      (Diagnostic.errorf ~code:"E002" loc
         "relation %s has arity %d but row %d has %d value(s)" rel_name
         (Schema.arity schema) row_index (List.length values));
    None
  end
  else
    let coords =
      List.mapi
        (fun i v ->
          let h = Schema.hierarchy schema i in
          match Resolve.value sim h ~loc ~emit v with
          | None -> None
          | Some node ->
            (match v with
            | Ast.Atom name when Hierarchy.is_class h node ->
              emit
                (Diagnostic.hintf ~code:"H201" loc
                   "%S is a class; the row applies to every member — write ALL \
                    %s if that is intended"
                   name name)
            | _ -> ());
            Some node)
        values
    in
    if List.for_all Option.is_some coords then
      Some (Item.make schema (Array.of_list (List.map Option.get coords)))
    else None

(* W109: the inserted negation is an exception that erases its parent
   class entirely — a stored positive generalization whose whole atomic
   extension the exception re-covers. The paper's exceptions (§2.2,
   penguins among birds) carve a strict subset out of a generalization;
   an exception congruent with the generalization's extension leaves the
   positive assertion holding nowhere, which is almost never intended. *)
let erased_generalization schema rel item sign =
  if sign <> Types.Neg then None
  else
    List.find_opt
      (fun (t : Relation.tuple) ->
        t.Relation.sign = Types.Pos
        && Item.strictly_subsumes schema t.Relation.item item
        && extension_size schema t.Relation.item <= extension_cap
        &&
        let atoms = Item.atomic_extension schema t.Relation.item in
        atoms <> []
        && List.for_all (fun atom -> Item.subsumes schema item atom) atoms)
      (Relation.tuples rel)

(* W107: under flattening the insert changes nothing — every atom of the
   row already receives exactly this sign from the stored tuples. Unlike
   W102 this needs no single covering generalization: a patchwork of
   narrower tuples (or an exact duplicate) triggers it too. *)
let noop_under_flattening schema rel item sign =
  extension_size schema item <= extension_cap
  &&
  let atoms = Item.atomic_extension schema item in
  atoms <> []
  && List.for_all
       (fun atom ->
         match Binding.verdict rel atom with
         | Binding.Asserted (s, _) -> s = sign
         | Binding.Unasserted | Binding.Conflict _ -> false)
       atoms

let check_insert sim ~loc ~emit rel rows =
  match Sim_catalog.find_relation sim rel with
  | None ->
    if not (Sim_catalog.is_poisoned sim rel) then
      emit (Diagnostic.errorf ~code:"E001" loc "unknown relation %S" rel)
  | Some entry ->
    let schema = Relation.schema entry.Sim_catalog.rel in
    let was_consistent =
      entry.Sim_catalog.exact && Integrity.is_consistent entry.Sim_catalog.rel
    in
    let shadow = ref entry.Sim_catalog.rel in
    List.iteri
      (fun i { Ast.sign; values } ->
        match check_row_values sim schema ~loc ~emit rel (i + 1) values with
        | None -> ()
        | Some item ->
          if entry.Sim_catalog.exact then begin
            let fired = ref false in
            let fire d =
              fired := true;
              emit d
            in
            (match Relation.find !shadow item with
            | Some sign' when sign' <> sign -> (
              (* Same item, opposite sign. If the script itself asserted
                 the stored tuple in an earlier statement, this is a
                 cross-statement contradiction (the overwrite silently
                 wins) — W108; otherwise the contradiction is against
                 pre-existing or same-statement data — W104. *)
              match Sim_catalog.find_write sim rel item with
              | Some w when w.Sim_catalog.w_stmt < Sim_catalog.current_statement sim
                ->
                fired := true;
                emit
                  (Diagnostic.warningf ~code:"W108"
                     ~related:
                       [
                         Format.asprintf "the contradicted assertion is at %a"
                           Hr_query.Loc.pp w.Sim_catalog.w_loc;
                       ]
                     loc
                     "row %d asserts %s %s, contradicting the %s asserted \
                      earlier in this script; the later sign overwrites the \
                      earlier one"
                     (i + 1)
                     (match sign with Types.Pos -> "+" | Types.Neg -> "-")
                     (Item.to_string schema item)
                     (match w.Sim_catalog.w_sign with
                     | Types.Pos -> "+"
                     | Types.Neg -> "-"))
              | _ ->
                fire
                  (Diagnostic.warningf ~code:"W104" loc
                     "row %d directly contradicts a stored tuple: %s is already \
                      asserted with the opposite sign in %s"
                     (i + 1)
                     (Item.to_string schema item)
                     rel))
            | _ ->
              if dead_row schema !shadow item sign then
                fire
                  (Diagnostic.warningf ~code:"W102" loc
                     "row %d is dead: %s is already implied by a more general \
                      tuple of the same sign in %s"
                     (i + 1)
                     (Item.to_string schema item)
                     rel));
            (if not !fired then
               match erased_generalization schema !shadow item sign with
               | Some gen ->
                 fire
                   (Diagnostic.warningf ~code:"W109" loc
                      "row %d: the exception %s covers the entire extension of \
                       its generalization %s — the positive assertion no longer \
                       holds anywhere"
                      (i + 1)
                      (Item.to_string schema item)
                      (Item.to_string schema gen.Relation.item))
               | None -> ());
            if (not !fired) && noop_under_flattening schema !shadow item sign then
              fire
                (Diagnostic.warningf ~code:"W107" loc
                   "row %d is a no-op under flattening: every instance of %s \
                    already receives this sign from the stored tuples"
                   (i + 1)
                   (Item.to_string schema item));
            shadow := Relation.set !shadow item sign;
            Sim_catalog.record_write sim rel item sign loc;
            if sign = Types.Neg && shadowed_negation schema !shadow item then
              emit
                (Diagnostic.warningf ~code:"W103" loc
                   "row %d: the negation on %s is shadowed — every instance it \
                    covers is re-asserted by a more specific positive tuple"
                   (i + 1)
                   (Item.to_string schema item))
          end)
      rows;
    if entry.Sim_catalog.exact then begin
      (if was_consistent then
         match Integrity.first_conflict !shadow with
         | Some c ->
           emit
             (Diagnostic.warningf ~code:"W104" loc
                "insert leaves %s ambiguous: %s" rel
                (Format.asprintf "%a" (Integrity.pp_conflict schema) c))
         | None -> ());
      Sim_catalog.replace_relation sim { entry with Sim_catalog.rel = !shadow }
    end

let check_values_against sim ~loc ~emit rel values =
  match Sim_catalog.find_relation sim rel with
  | None ->
    if not (Sim_catalog.is_poisoned sim rel) then
      emit (Diagnostic.errorf ~code:"E001" loc "unknown relation %S" rel);
    None
  | Some entry ->
    let schema = Relation.schema entry.Sim_catalog.rel in
    (match check_row_values sim schema ~loc ~emit rel 1 values with
    | Some item -> Some (entry, item)
    | None -> None)

let check_relation_exists sim ~loc ~emit rel =
  match Sim_catalog.find_relation sim rel with
  | Some entry -> Some entry
  | None ->
    if not (Sim_catalog.is_poisoned sim rel) then
      emit (Diagnostic.errorf ~code:"E001" loc "unknown relation %S" rel);
    None

let infer_schema sim ~emit expr = Expr_check.infer sim ~emit expr

(* Relation names a statement reads. A read makes every earlier write to
   that relation observable, which is what keeps W106 (dead write) from
   firing on rows a query in between actually used. *)
let rec expr_rels acc { Ast.expr; _ } =
  match expr with
  | Ast.Rel n -> n :: acc
  | Ast.Select (e, _, _)
  | Ast.Project (e, _)
  | Ast.Rename (e, _, _)
  | Ast.Consolidated e
  | Ast.Explicated (e, _) ->
    expr_rels acc e
  | Ast.Join (a, b) | Ast.Union (a, b) | Ast.Intersect (a, b) | Ast.Except (a, b)
    ->
    expr_rels (expr_rels acc a) b

let reads_of = function
  | Ast.Select_query { expr; _ }
  | Ast.Let_binding { expr; _ }
  | Ast.Explain_plan expr
  | Ast.Explain_analyze expr
  | Ast.Explain_estimate expr
  | Ast.Count { expr; _ } ->
    expr_rels [] expr
  | Ast.Diff { prev; next } -> expr_rels (expr_rels [] prev) next
  | Ast.Ask { rel; _ } | Ast.Explain { rel; _ } | Ast.Check rel
  | Ast.Consolidate rel
  | Ast.Explicate { rel; _ } ->
    [ rel ]
  | Ast.Create_domain _ | Ast.Create_class _ | Ast.Create_instance _
  | Ast.Create_isa _ | Ast.Create_preference _ | Ast.Create_relation _
  | Ast.Drop_relation _ | Ast.Insert _ | Ast.Delete _ | Ast.Show_hierarchy _
  | Ast.Show_relations | Ast.Show_hierarchies | Ast.Stats _ | Ast.Stats_reset
  | Ast.Explain_effects _ ->
    []

(* W106: a row this script asserted is unconditionally destroyed (exact
   DELETE, or the whole relation dropped) with no read of the relation in
   between — the write could not have been observed. Reported at the
   write's own span so the fix (delete the insert) is where the cursor
   lands; the destroying statement is the related note. *)
let dead_write_check sim ~emit rel schema ~verb ~at w =
  if
    w.Sim_catalog.w_stmt < Sim_catalog.current_statement sim
    && Sim_catalog.last_read sim rel < w.Sim_catalog.w_stmt
  then
    emit
      (Diagnostic.warningf ~code:"W106"
         ~related:[ Format.asprintf "%s at %a" verb Hr_query.Loc.pp at ]
         w.Sim_catalog.w_loc
         "dead write: %s%s is asserted here but %s before %s is ever read"
         (match w.Sim_catalog.w_sign with Types.Pos -> "+ " | Types.Neg -> "- ")
         (Item.to_string schema w.Sim_catalog.w_item)
         verb rel)

let check sim ~emit { Ast.stmt; sloc = loc } =
  ignore (Sim_catalog.begin_statement sim);
  List.iter (Sim_catalog.note_read sim) (reads_of stmt);
  match stmt with
  | Ast.Create_domain name ->
    if Option.is_some (Sim_catalog.find_hierarchy sim name) then
      emit (Diagnostic.errorf ~code:"E009" loc "domain %S already exists" name)
    else if name_defined sim name then
      emit
        (Diagnostic.errorf ~code:"E009" loc
           "%S is already defined as a class or instance" name)
    else Sim_catalog.define_hierarchy sim (Hierarchy.create name)
  | Ast.Create_class { name; parents } ->
    let fresh = check_fresh_name sim ~loc ~emit name in
    (match check_parents sim ~loc ~emit ~kind:"class" name parents with
    | Some h when fresh -> ignore (Hierarchy.add_class h ~parents name)
    | _ -> ())
  | Ast.Create_instance { name; parents } ->
    let fresh = check_fresh_name sim ~loc ~emit name in
    (match check_parents sim ~loc ~emit ~kind:"instance" name parents with
    | Some h when fresh -> ignore (Hierarchy.add_instance h ~parents name)
    | _ -> ())
  | Ast.Create_isa { sub; super } -> (
    match Resolve.hierarchy_of_member sim ~loc ~emit super with
    | None -> ()
    | Some h -> (
      match Hierarchy.find h sub with
      | None ->
        if Sim_catalog.hierarchies_containing sim sub = [] then
          emit (Diagnostic.errorf ~code:"E008" loc "unknown class or instance %S" sub)
        else
          emit
            (Diagnostic.errorf ~code:"E003" loc
               "%S is not in domain %s; isa edges cannot cross domains" sub
               (Resolve.domain_name h))
      | Some sub_node ->
        let super_node = Hierarchy.find_exn h super in
        if Hierarchy.subsumes h sub_node super_node then
          emit
            (Diagnostic.errorf ~code:"E005" loc
               "isa edge %s -> %s would create a cycle: %s already subsumes %s"
               super sub sub super)
        else begin
          let before = Hierarchy.validate h in
          (try Hierarchy.add_isa h ~sub ~super
           with Hierarchy.Error msg ->
             emit (Diagnostic.errorf ~code:"E010" loc "%s" msg));
          List.iter
            (fun issue ->
              if not (List.mem issue before) then
                match issue with
                | Hierarchy.Redundant_isa_edge (a, b) ->
                  emit
                    (Diagnostic.warningf ~code:"W101" loc
                       "isa edge %s -> %s is redundant (implied by another \
                        path); it changes off-path preemption"
                       (Hierarchy.node_label h a) (Hierarchy.node_label h b)))
            (Hierarchy.validate h)
        end))
  | Ast.Create_preference { weaker; stronger } -> (
    match Resolve.hierarchy_of_member sim ~loc ~emit weaker with
    | None -> ()
    | Some h ->
      if not (Hierarchy.mem h stronger) then begin
        if Sim_catalog.hierarchies_containing sim stronger = [] then
          emit
            (Diagnostic.errorf ~code:"E008" loc "unknown class or instance %S"
               stronger)
        else
          emit
            (Diagnostic.errorf ~code:"E003" loc
               "%S is not in domain %s; preference edges cannot cross domains"
               stronger (Resolve.domain_name h))
      end
      else
        try Hierarchy.add_preference h ~weaker ~stronger
        with Hierarchy.Error msg ->
          emit (Diagnostic.errorf ~code:"E010" loc "%s" msg))
  | Ast.Create_relation { name; attrs } ->
    let dup_rel = Option.is_some (Sim_catalog.find_relation sim name) in
    if dup_rel then
      emit (Diagnostic.errorf ~code:"E009" loc "relation %S already exists" name);
    let dup_attr =
      List.exists
        (fun (a, _) ->
          List.length (List.filter (fun (a', _) -> a = a') attrs) > 1)
        attrs
    in
    if dup_attr then
      emit
        (Diagnostic.errorf ~code:"E009" loc
           "relation %S declares a duplicate attribute name" name);
    let resolved =
      List.map
        (fun (a, d) ->
          match Sim_catalog.find_hierarchy sim d with
          | Some h -> Some (a, h)
          | None ->
            emit
              (Diagnostic.errorf ~code:"E008" loc
                 "unknown domain %S for attribute %S" d a);
            None)
        attrs
    in
    if
      (not dup_rel) && (not dup_attr)
      && List.for_all Option.is_some resolved
      && resolved <> []
    then
      Sim_catalog.define_relation sim ~exact:true
        (Relation.empty ~name (Schema.make (List.map Option.get resolved)))
    else if not dup_rel then Sim_catalog.poison sim name
  | Ast.Drop_relation name -> (
    match Sim_catalog.find_relation sim name with
    | Some entry ->
      (if entry.Sim_catalog.exact then
         let schema = Relation.schema entry.Sim_catalog.rel in
         List.iter
           (dead_write_check sim ~emit name schema ~verb:"the relation is dropped"
              ~at:loc)
           (Sim_catalog.writes_of sim name));
      Sim_catalog.forget_writes sim name;
      Sim_catalog.drop_relation sim name
    | None ->
      if not (Sim_catalog.is_poisoned sim name) then
        emit (Diagnostic.errorf ~code:"E001" loc "unknown relation %S" name))
  | Ast.Insert { rel; rows } -> check_insert sim ~loc ~emit rel rows
  | Ast.Delete { rel; rows } -> (
    match check_relation_exists sim ~loc ~emit rel with
    | None -> ()
    | Some entry ->
      let schema = Relation.schema entry.Sim_catalog.rel in
      let shadow = ref entry.Sim_catalog.rel in
      List.iteri
        (fun i values ->
          match check_row_values sim schema ~loc ~emit rel (i + 1) values with
          | Some item ->
            if entry.Sim_catalog.exact then begin
              (match Sim_catalog.find_write sim rel item with
              | Some w ->
                dead_write_check sim ~emit rel schema ~verb:"deleted" ~at:loc w
              | None -> ());
              Sim_catalog.forget_write sim rel item;
              shadow := Relation.remove !shadow item
            end
          | None -> ())
        rows;
      if entry.Sim_catalog.exact then
        Sim_catalog.replace_relation sim { entry with Sim_catalog.rel = !shadow })
  | Ast.Select_query { expr; _ } -> ignore (infer_schema sim ~emit expr)
  | Ast.Let_binding { name; expr } -> (
    match infer_schema sim ~emit expr with
    | None -> Sim_catalog.poison sim name
    | Some attrs -> (
      let schema =
        Schema.make
          (List.map (fun a -> (a.Expr_check.aname, a.Expr_check.hier)) attrs)
      in
      let rel = Relation.empty ~name schema in
      match Sim_catalog.find_relation sim name with
      | Some _ ->
        (* the binding replaces the whole relation; provenance for the
           old contents no longer applies *)
        Sim_catalog.forget_writes sim name;
        Sim_catalog.replace_relation sim { Sim_catalog.rel; exact = false }
      | None -> Sim_catalog.define_relation sim ~exact:false rel))
  | Ast.Ask { rel; values; _ } ->
    ignore (check_values_against sim ~loc ~emit rel values)
  | Ast.Explain { rel; values } ->
    ignore (check_values_against sim ~loc ~emit rel values)
  | Ast.Consolidate name ->
    (match check_relation_exists sim ~loc ~emit name with
    | None -> ()
    | Some _ ->
      emit
        (Diagnostic.hintf ~code:"H203" loc
           "CONSOLIDATE is logged as its source text: a replica re-derives the \
            rewritten contents of %s at apply time; verify convergence with \
            hrdb fsck --against"
           name))
  | Ast.Explicate { rel; over } -> (
    match check_relation_exists sim ~loc ~emit rel with
    | None -> ()
    | Some entry ->
      emit
        (Diagnostic.hintf ~code:"H203" loc
           "EXPLICATE is logged as its source text: a replica re-derives the \
            rewritten contents of %s at apply time; verify convergence with \
            hrdb fsck --against"
           rel);
      let schema = Relation.schema entry.Sim_catalog.rel in
      (match over with
      | None -> ()
      | Some names ->
        List.iter
          (fun n ->
            if Option.is_none (Schema.find_index schema n) then
              emit
                (Diagnostic.errorf ~code:"E008" loc
                   "explication over unknown attribute %S of %s" n rel))
          names);
      (* explication rewrites contents; the shadow no longer tracks them *)
      Sim_catalog.forget_writes sim rel;
      Sim_catalog.replace_relation sim { entry with Sim_catalog.exact = false })
  | Ast.Check name -> ignore (check_relation_exists sim ~loc ~emit name)
  | Ast.Show_hierarchy name ->
    if Option.is_none (Sim_catalog.find_hierarchy sim name) then
      emit (Diagnostic.errorf ~code:"E008" loc "unknown domain %S" name)
  | Ast.Show_relations | Ast.Show_hierarchies -> ()
  | Ast.Explain_plan expr | Ast.Explain_analyze expr | Ast.Explain_estimate expr ->
    ignore (infer_schema sim ~emit expr)
  | Ast.Stats _ | Ast.Stats_reset -> ()
  (* EXPLAIN EFFECTS never executes its statement; the footprint
     analysis itself is total, so there is nothing to pre-check. *)
  | Ast.Explain_effects _ -> ()
  | Ast.Count { expr; by } -> (
    match infer_schema sim ~emit expr, by with
    | Some attrs, Some attr ->
      if Option.is_none (Expr_check.find_attr attrs attr) then
        emit
          (Diagnostic.errorf ~code:"E008" loc
             "COUNT BY unknown attribute %S (schema is %s)" attr
             (Expr_check.pp_schema attrs))
    | _ -> ())
  | Ast.Diff { prev; next } -> (
    let sp = infer_schema sim ~emit prev and sn = infer_schema sim ~emit next in
    match sp, sn with
    | Some sp, Some sn when not (Expr_check.compatible sp sn) ->
      emit
        (Diagnostic.errorf ~code:"E006" loc
           "DIFF operands must have identical schemas: %s vs %s"
           (Expr_check.pp_schema sp) (Expr_check.pp_schema sn))
    | _ -> ())
