(** Static checking of HRQL query expressions: schema inference over the
    simulated catalog, without evaluating anything.

    [infer] returns the expression's schema when it can be determined —
    attribute names in order, each with its domain hierarchy — and
    [None] after a reported error made the schema unknowable. Checks are
    best-effort: one bad operand does not stop the other operand's
    checks. *)

module Hierarchy = Hr_hierarchy.Hierarchy
module Ast = Hr_query.Ast
open Hierel

type attr = { aname : string; hier : Hierarchy.t }

let pp_schema attrs =
  "("
  ^ String.concat ", "
      (List.map (fun a -> a.aname ^ ": " ^ Resolve.domain_name a.hier) attrs)
  ^ ")"

let of_relation rel =
  let schema = Relation.schema rel in
  List.mapi
    (fun i name -> { aname = name; hier = Schema.hierarchy schema i })
    (Schema.names schema)

let compatible a b =
  List.length a = List.length b
  && List.for_all2 (fun x y -> x.aname = y.aname && x.hier == y.hier) a b

let find_attr attrs name = List.find_opt (fun a -> a.aname = name) attrs

(* The stored relation an expression re-represents, reached through
   schema- and position-preserving operators only. Used by checks that
   need contents (H202). *)
let rec base_entry sim e =
  match e.Ast.expr with
  | Ast.Rel name -> Sim_catalog.find_relation sim name
  | Ast.Select (inner, _, _) | Ast.Consolidated inner | Ast.Explicated (inner, _) ->
    base_entry sim inner
  | _ -> None

(* The chain of selections directly under [e], innermost last — for
   detecting contradictory ANDed conditions (W105). *)
let rec inner_selections acc e =
  match e.Ast.expr with
  | Ast.Select (inner, attr, v) -> inner_selections ((attr, v) :: acc) inner
  | _ -> acc

let rec infer sim ~emit (e : Ast.query_expr) =
  let loc = e.Ast.eloc in
  match e.Ast.expr with
  | Ast.Rel name -> (
    match Sim_catalog.find_relation sim name with
    | Some { rel; _ } -> Some (of_relation rel)
    | None ->
      if not (Sim_catalog.is_poisoned sim name) then
        emit (Diagnostic.errorf ~code:"E001" loc "unknown relation %S" name);
      None)
  | Ast.Select (inner, attr, v) -> (
    let si = infer sim ~emit inner in
    match si with
    | None -> None
    | Some attrs -> (
      (match find_attr attrs attr with
      | None ->
        emit
          (Diagnostic.errorf ~code:"E008" loc
             "selection on unknown attribute %S (schema is %s)" attr
             (pp_schema attrs))
      | Some { hier; _ } -> (
        match Resolve.value sim hier ~loc ~emit v with
        | None -> ()
        | Some node ->
          (* contradictory ANDed selections on the same attribute *)
          List.iter
            (fun (attr', v') ->
              if attr' = attr then
                match Hierarchy.find hier (Ast.value_name v') with
                | Some node' when not (Hierarchy.intersects hier node node') ->
                  emit
                    (Diagnostic.warningf ~code:"W105" loc
                       "selection is unsatisfiable: %s = %s contradicts %s = %s \
                        (disjoint in domain %s)"
                       attr (Ast.value_name v) attr' (Ast.value_name v')
                       (Resolve.domain_name hier))
                | _ -> ())
            (inner_selections [] inner)));
      si))
  | Ast.Project (inner, names) -> (
    let si = infer sim ~emit inner in
    match si with
    | None -> None
    | Some attrs ->
      let dup =
        List.find_opt (fun n -> List.length (List.filter (( = ) n) names) > 1) names
      in
      (match dup with
      | Some n ->
        emit
          (Diagnostic.errorf ~code:"E009" loc
             "attribute %S appears twice in the projection" n)
      | None -> ());
      let known =
        List.filter_map
          (fun n ->
            match find_attr attrs n with
            | Some a -> Some a
            | None ->
              emit
                (Diagnostic.errorf ~code:"E008" loc
                   "projection on unknown attribute %S (schema is %s)" n
                   (pp_schema attrs));
              None)
          names
      in
      if List.length known <> List.length names || dup <> None then None
      else begin
        check_projected_exceptions sim ~emit ~loc inner attrs names;
        Some known
      end)
  | Ast.Join (a, b) -> (
    let sa = infer sim ~emit a and sb = infer sim ~emit b in
    match sa, sb with
    | Some sa, Some sb ->
      let shared =
        List.filter (fun x -> Option.is_some (find_attr sb x.aname)) sa
      in
      List.iter
        (fun x ->
          match find_attr sb x.aname with
          | Some y when not (x.hier == y.hier) ->
            emit
              (Diagnostic.errorf ~code:"E007" loc
                 "join on attribute %S over disjoint domains %s and %s" x.aname
                 (Resolve.domain_name x.hier) (Resolve.domain_name y.hier))
          | _ -> ())
        shared;
      if List.exists
           (fun x ->
             match find_attr sb x.aname with
             | Some y -> not (x.hier == y.hier)
             | None -> false)
           sa
      then None
      else
        Some (sa @ List.filter (fun y -> Option.is_none (find_attr sa y.aname)) sb)
    | _ -> None)
  | Ast.Union (a, b) -> set_op sim ~emit ~loc "UNION" a b
  | Ast.Intersect (a, b) -> set_op sim ~emit ~loc "INTERSECT" a b
  | Ast.Except (a, b) -> set_op sim ~emit ~loc "EXCEPT" a b
  | Ast.Rename (inner, old_name, new_name) -> (
    let si = infer sim ~emit inner in
    match si with
    | None -> None
    | Some attrs -> (
      match find_attr attrs old_name with
      | None ->
        emit
          (Diagnostic.errorf ~code:"E008" loc
             "rename of unknown attribute %S (schema is %s)" old_name
             (pp_schema attrs));
        None
      | Some _ when old_name <> new_name && Option.is_some (find_attr attrs new_name)
        ->
        emit
          (Diagnostic.errorf ~code:"E006" loc
             "rename %s -> %s collides with an existing attribute" old_name new_name);
        None
      | Some _ ->
        Some
          (List.map
             (fun a -> if a.aname = old_name then { a with aname = new_name } else a)
             attrs)))
  | Ast.Consolidated inner -> infer sim ~emit inner
  | Ast.Explicated (inner, over) -> (
    let si = infer sim ~emit inner in
    match si, over with
    | Some attrs, Some names ->
      List.iter
        (fun n ->
          if Option.is_none (find_attr attrs n) then
            emit
              (Diagnostic.errorf ~code:"E008" loc
                 "explication over unknown attribute %S (schema is %s)" n
                 (pp_schema attrs)))
        names;
      si
    | _ -> si)

and set_op sim ~emit ~loc op a b =
  let sa = infer sim ~emit a and sb = infer sim ~emit b in
  match sa, sb with
  | Some sa, Some sb ->
    if compatible sa sb then Some sa
    else begin
      emit
        (Diagnostic.errorf ~code:"E006" loc
           "operands of %s must have identical schemas: %s vs %s" op (pp_schema sa)
           (pp_schema sb));
      None
    end
  | Some sa, None -> Some sa
  | None, Some sb -> Some sb
  | None, None -> None

(* H202: projecting away an attribute on which a stored negated tuple
   carves its exception loses the exception structure (the paper's Fig.
   11c caveat; [Ops.project] resolves collisions in favour of the
   positive tuple). Only checked when the projected expression
   re-represents a stored relation with known contents. *)
and check_projected_exceptions sim ~emit ~loc inner attrs names =
  match base_entry sim inner with
  | Some { rel; exact = true } ->
    let schema = Relation.schema rel in
    let dropped =
      List.mapi (fun i n -> (i, n)) (Schema.names schema)
      |> List.filter (fun (_, n) -> not (List.mem n names))
    in
    let carrying =
      List.filter
        (fun (i, _) ->
          List.exists
            (fun (t : Relation.tuple) ->
              t.Relation.sign = Types.Neg
              && Hierarchy.is_class (Schema.hierarchy schema i)
                   (Item.coord t.Relation.item i))
            (Relation.tuples rel))
        dropped
    in
    (match carrying with
    | [] -> ()
    | (_, n) :: _ ->
      emit
        (Diagnostic.hintf ~code:"H202" loc
           "projection drops attribute %S, on which %s carries a negated class \
            tuple; the exception structure is lost (positives win on collision)"
           n (Relation.name rel)))
  | _ ->
    ignore attrs;
    ()
