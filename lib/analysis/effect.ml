(* The commutativity oracle: do two HRQL statements commute?

   Sound by construction, never complete: [Commute] is only answered
   when every same-relation atom pair involving a write has provably
   disjoint cones — any ⊤ coordinate, unknown relation, arity mismatch
   or DDL degrades the answer to [Unknown], which every consumer treats
   as conflicting. The full argument (including why overlapping
   SAME-sign writes must conflict — ambiguity-constraint acceptance in
   Txn.commit is order-sensitive) lives in docs/EFFECTS.md, and the
   differential harness in test/test_effect.ml holds the oracle to it:
   whenever it answers [Commute] for a random pair, both application
   orders must yield byte-identical flattened catalogs. *)

module Ast = Hr_query.Ast
open Hierel

let m_footprints = Hr_obs.Metrics.counter "effect.footprints"
let m_commute = Hr_obs.Metrics.counter "effect.oracle_commute"
let m_conflict = Hr_obs.Metrics.counter "effect.oracle_conflict"
let m_unknown = Hr_obs.Metrics.counter "effect.oracle_unknown"
let m_router_overlapped = Hr_obs.Metrics.counter "effect.router_overlapped"

(* The shard router calls this when the oracle let it overlap a
   cross-subtree mutation with an in-flight pipelined run. *)
let note_router_overlap () = Hr_obs.Metrics.incr m_router_overlapped

type overlap = {
  o_rel : string;
  o_left : Footprint.atom;
  o_right : Footprint.atom;
  o_incomparable : bool;
      (** neither item subsumes the other: the carved cones are
          incomparable (lint W110 fires only on these) *)
}

type verdict =
  | Commute
  | Conflict of overlap list  (** at least one proven overlap *)
  | Unknown of string  (** unresolvable; treat as conflicting *)

let footprint ~find stmt =
  Hr_obs.Metrics.incr m_footprints;
  Footprint.of_statement ~find stmt

(* [unsound_oracle] is a test-only seeded bug (mirroring test_mc.ml's
   unsafe-publish switch): it wrongly declares overlapping
   opposite-sign write pairs commuting. The differential harness must
   catch it — if it ever stops failing under this flag, the harness has
   lost its teeth. *)
let commutes_fp ?(unsound_oracle = false) a b =
  let count v =
    (match v with
    | Commute -> Hr_obs.Metrics.incr m_commute
    | Conflict _ -> Hr_obs.Metrics.incr m_conflict
    | Unknown _ -> Hr_obs.Metrics.incr m_unknown);
    v
  in
  match (a, b) with
  | Footprint.Opaque r, _ | _, Footprint.Opaque r ->
    count (Unknown ("opaque footprint: " ^ r))
  | Footprint.Atoms xs, Footprint.Atoms ys ->
    let conflicts = ref [] and unknown = ref None in
    List.iter
      (fun (x : Footprint.atom) ->
        List.iter
          (fun (y : Footprint.atom) ->
            if
              x.Footprint.rel = y.Footprint.rel
              && (x.Footprint.mode = Footprint.Write
                 || y.Footprint.mode = Footprint.Write)
            then
              match Footprint.compare_cones x y with
              | Footprint.Disjoint -> ()
              | Footprint.Overlap ->
                let buggy_skip =
                  unsound_oracle
                  && x.Footprint.mode = Footprint.Write
                  && y.Footprint.mode = Footprint.Write
                  &&
                  match (x.Footprint.sign, y.Footprint.sign) with
                  | Some Types.Pos, Some Types.Neg
                  | Some Types.Neg, Some Types.Pos ->
                    true
                  | _ -> false
                in
                if not buggy_skip then
                  conflicts :=
                    {
                      o_rel = x.Footprint.rel;
                      o_left = x;
                      o_right = y;
                      o_incomparable = Footprint.incomparable x y;
                    }
                    :: !conflicts
              | Footprint.May_overlap ->
                if !unknown = None then
                  unknown :=
                    Some
                      (Printf.sprintf
                         "cones over %s cannot be proven disjoint"
                         x.Footprint.rel))
          ys)
      xs;
    count
      (match (!conflicts, !unknown) with
      | (_ :: _ as cs), _ -> Conflict (List.rev cs)
      | [], Some reason -> Unknown reason
      | [], None -> Commute)

let commutes ?unsound_oracle ~find s1 s2 =
  commutes_fp ?unsound_oracle (footprint ~find s1) (footprint ~find s2)

let verdict_label = function
  | Commute -> "commute"
  | Conflict _ -> "conflict"
  | Unknown _ -> "unknown"

(* ---- EXPLAIN EFFECTS --------------------------------------------------- *)

let explain cat stmt =
  let find name = Catalog.find_relation cat name in
  let fp = footprint ~find stmt in
  let b = Buffer.create 128 in
  Buffer.add_string b (Footprint.to_string fp);
  (match fp with
  | Footprint.Opaque _ ->
    Buffer.add_string b
      "\nany reordering across this statement is unsound (oracle: unknown)"
  | Footprint.Atoms atoms ->
    let writes = List.filter (fun a -> a.Footprint.mode = Footprint.Write) atoms in
    let widened =
      List.exists (fun (a : Footprint.atom) ->
          match a.Footprint.cones with
          | None -> true
          | Some cs -> Array.exists (fun c -> c = Footprint.Top) cs)
        atoms
    in
    Buffer.add_string b
      (Printf.sprintf "\n%d atom(s), %d write(s)%s" (List.length atoms)
         (List.length writes)
         (if widened then
            "; \xe2\x8a\xa4 coordinates present \xe2\x80\x94 the oracle will \
             answer unknown for overlap questions involving them"
          else "")));
  Buffer.contents b

(* Registration of the EXPLAIN EFFECTS renderer into the evaluator, the
   same late-binding trick as {!Estimate}: hr_query cannot depend on
   hr_analysis, so the evaluator holds a ref this module fills at link
   time. *)
let () = Hr_query.Eval.set_effects_renderer (fun cat stmt -> Ok (explain cat stmt))
let ensure_registered () = ()
