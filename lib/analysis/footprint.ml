(* Abstract effect footprints for HRQL statements.

   A footprint is the set of (relation, item-cone, sign, read|write)
   atoms a statement may touch. Item coordinates are hierarchy DAG
   nodes, so an atom's reach is the node's cone (itself plus every
   transitive descendant) — the paper's reason a single row like
   [+ ALL bird] has non-local effect. Anything the analysis cannot
   resolve widens to [Top] (written ⊤), and DDL — which rewrites the
   very hierarchies cones are expressed in — is [Opaque]: no cone
   vocabulary survives it.

   Footprints feed the commutativity oracle ({!Effect.commutes}); the
   soundness argument is spelled out in docs/EFFECTS.md. *)

module Ast = Hr_query.Ast
module Hierarchy = Hr_hierarchy.Hierarchy
open Hierel

type cone =
  | Top  (** unresolved: conservatively covers every item *)
  | Node of Hierarchy.t * Hierarchy.node
      (** the node's cone in its hierarchy (itself + descendants) *)

type mode = Read | Write

type atom = {
  rel : string;
  mode : mode;
  sign : Types.sign option;  (** [None] for reads and DELETE rows *)
  cones : cone array option;
      (** one cone per attribute, in schema order; [None] when even the
          relation's arity is unknown (widest possible atom) *)
}

type t =
  | Atoms of atom list
  | Opaque of string  (** why nothing can be said (e.g. DDL) *)

(* ---- construction ------------------------------------------------------ *)

let relations_of_expr expr =
  let rec walk acc { Ast.expr = node; _ } =
    match node with
    | Ast.Rel name -> name :: acc
    | Ast.Select (e, _, _)
    | Ast.Project (e, _)
    | Ast.Rename (e, _, _)
    | Ast.Consolidated e
    | Ast.Explicated (e, _) ->
      walk acc e
    | Ast.Join (a, b) | Ast.Union (a, b) | Ast.Intersect (a, b) | Ast.Except (a, b)
      ->
      walk (walk acc a) b
  in
  List.sort_uniq String.compare (walk [] expr)

(* Resolve one surface value against the attribute's hierarchy. A name
   the hierarchy does not define widens to ⊤ — the oracle then answers
   [Unknown] for any overlap question involving it. ALL c and a bare c
   both denote c's cone; an instance's cone is the instance itself. *)
let resolve_value h v =
  match Hierarchy.find h (Ast.value_name v) with
  | Some node -> Node (h, node)
  | None -> Top

let resolve_row find rel values =
  match find rel with
  | None -> None
  | Some r ->
    let schema = Relation.schema r in
    if List.length values <> Schema.arity schema then None
    else
      Some
        (Array.of_list
           (List.mapi (fun i v -> resolve_value (Schema.hierarchy schema i) v) values))

let read_all rel = { rel; mode = Read; sign = None; cones = None }
let write_all rel = { rel; mode = Write; sign = None; cones = None }
let reads_of_expr expr = List.map read_all (relations_of_expr expr)

let of_statement ~find stmt =
  match stmt with
  (* DDL rewrites the hierarchies cones live in: no footprint survives. *)
  | Ast.Create_domain _ | Ast.Create_class _ | Ast.Create_instance _
  | Ast.Create_isa _ | Ast.Create_preference _ | Ast.Create_relation _
  | Ast.Drop_relation _ ->
    Opaque "DDL (rewrites the hierarchy the cones are expressed in)"
  | Ast.Insert { rel; rows } ->
    Atoms
      (List.map
         (fun { Ast.sign; values } ->
           { rel; mode = Write; sign = Some sign; cones = resolve_row find rel values })
         rows)
  | Ast.Delete { rel; rows } ->
    Atoms
      (List.map
         (fun values ->
           { rel; mode = Write; sign = None; cones = resolve_row find rel values })
         rows)
  | Ast.Let_binding { name; expr } ->
    (* Replaces the binding wholesale: a ⊤ write on the name, plus reads
       of everything the defining expression mentions. *)
    Atoms (write_all name :: reads_of_expr expr)
  | Ast.Consolidate rel -> Atoms [ read_all rel; write_all rel ]
  | Ast.Explicate { rel; over = _ } -> Atoms [ read_all rel; write_all rel ]
  | Ast.Select_query { expr; _ } -> Atoms (reads_of_expr expr)
  | Ast.Count { expr; _ } -> Atoms (reads_of_expr expr)
  | Ast.Diff { prev; next } -> Atoms (reads_of_expr prev @ reads_of_expr next)
  | Ast.Explain_plan expr | Ast.Explain_analyze expr | Ast.Explain_estimate expr
    ->
    Atoms (reads_of_expr expr)
  | Ast.Ask { rel; values; _ } | Ast.Explain { rel; values } ->
    Atoms [ { rel; mode = Read; sign = None; cones = resolve_row find rel values } ]
  | Ast.Check rel -> Atoms [ read_all rel ]
  | Ast.Explain_effects _ | Ast.Show_hierarchy _ | Ast.Show_relations
  | Ast.Show_hierarchies
  | Ast.Stats _ | Ast.Stats_reset ->
    Atoms []

let of_source ~find source =
  match Hr_query.Parser.parse source with
  | exception Hr_query.Lexer.Lex_error _ -> Opaque "does not lex"
  | exception Hr_query.Parser.Parse_error _ -> Opaque "does not parse"
  | stmts ->
    List.fold_left
      (fun acc { Ast.stmt; _ } ->
        match (acc, of_statement ~find stmt) with
        | Opaque r, _ | _, Opaque r -> Opaque r
        | Atoms a, Atoms b -> Atoms (a @ b))
      (Atoms []) stmts

(* ---- queries ----------------------------------------------------------- *)

let relations = function
  | Opaque _ -> None
  | Atoms atoms ->
    Some (List.sort_uniq String.compare (List.map (fun a -> a.rel) atoms))

let has_write = function
  | Opaque _ -> true
  | Atoms atoms -> List.exists (fun a -> a.mode = Write) atoms

(* Pairwise cone comparison: [Disjoint] and [Overlap] are both proofs
   (some coordinate provably empty-intersects / every coordinate provably
   intersects); [May_overlap] is the honest rest. Nodes resolved against
   physically different hierarchies are never compared — between the two
   resolutions a DDL must have intervened, so nothing is provable. *)
type cone_cmp = Disjoint | Overlap | May_overlap

let compare_cones a b =
  match (a.cones, b.cones) with
  | None, _ | _, None -> May_overlap
  | Some ca, Some cb ->
    if Array.length ca <> Array.length cb then May_overlap
    else begin
      let disjoint = ref false and unknown = ref false in
      Array.iteri
        (fun i xa ->
          match (xa, cb.(i)) with
          | Node (h1, n1), Node (h2, n2) when h1 == h2 ->
            if not (Hierarchy.intersects h1 n1 n2) then disjoint := true
          | _ -> unknown := true)
        ca;
      if !disjoint then Disjoint else if !unknown then May_overlap else Overlap
    end

(* a subsumes b: every coordinate of a covers the matching coordinate of
   b. ⊤ covers everything; nothing but ⊤ covers ⊤. *)
let subsumes a b =
  match (a.cones, b.cones) with
  | None, _ -> true
  | Some _, None -> false
  | Some ca, Some cb ->
    Array.length ca = Array.length cb
    && begin
         let ok = ref true in
         Array.iteri
           (fun i xa ->
             match (xa, cb.(i)) with
             | Top, _ -> ()
             | Node _, Top -> ok := false
             | Node (h1, n1), Node (h2, n2) ->
               if not (h1 == h2 && (n1 = n2 || Hierarchy.subsumes h1 n1 n2)) then
                 ok := false)
           ca;
         !ok
       end

(* Neither atom's item covers the other's: the pair carves incomparable
   cones (the shape behind order-dependent ambiguity acceptance). *)
let incomparable a b = (not (subsumes a b)) && not (subsumes b a)

(* ---- rendering --------------------------------------------------------- *)

let pp_cone ppf = function
  | Top -> Format.pp_print_string ppf "\xe2\x8a\xa4" (* ⊤ *)
  | Node (h, n) ->
    let label = Hierarchy.node_label h n in
    if Hierarchy.is_class h n then Format.fprintf ppf "%s\xe2\x86\x93" label
      (* ↓ marks a cone of descendants *)
    else Format.pp_print_string ppf label

let pp_atom ppf a =
  let mode = match a.mode with Read -> "read " | Write -> "write" in
  let sign =
    match a.sign with
    | Some Types.Pos -> " +"
    | Some Types.Neg -> " -"
    | None -> ""
  in
  (match a.cones with
  | None -> Format.fprintf ppf "%s %s%s (\xe2\x8a\xa4)" mode a.rel sign
  | Some cones ->
    Format.fprintf ppf "%s %s%s (%a)" mode a.rel sign
      (Format.pp_print_seq
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
         pp_cone)
      (Array.to_seq cones))

let pp ppf = function
  | Opaque reason -> Format.fprintf ppf "opaque: %s" reason
  | Atoms [] -> Format.pp_print_string ppf "empty (no catalog effect)"
  | Atoms atoms ->
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.pp_print_cut ppf ())
      pp_atom ppf atoms

let to_string fp = Format.asprintf "@[<v>%a@]" pp fp
