(** SARIF 2.1.0 rendering of lint results ([hrdb lint --format sarif]).

    Severity mapping: errors and warnings keep their SARIF level; hints
    and perf notes map to [note]. Rule metadata for every code that
    fired is embedded from {!Codes}. *)

val render :
  ?tool:string -> ?info_uri:string -> (string * Diagnostic.t list) list -> string
(** [render results] aggregates per-file diagnostics into one SARIF log
    with a single run; the first component of each pair is the artifact
    URI (the script path, or ["<stdin>"]). [tool] names the SARIF driver
    (default ["hrdb-lint"]; [hrdb fsck --format sarif] passes
    ["hrdb-fsck"]) and [info_uri] its documentation link (default
    ["docs/LINT.md"]). The output ends with a newline. *)
