(** The diagnostic-code catalogue.

    One entry per stable code — lint errors/warnings/hints (E/W/H,
    docs/LINT.md), performance notes (P, docs/COST.md), and fsck
    findings (F, docs/FSCK.md). [hrdb lint --explain CODE] renders an
    entry, and the SARIF writer ({!Sarif}) embeds entries as rule
    metadata, so every surface quotes the same prose. *)

type entry = {
  code : string;
  title : string;
  severity : string;
      (** ["error"], ["warning"], ["hint"], ["perf"], ["fsck critical"],
          or ["fsck warning"]. *)
  meaning : string;
  example : string;  (** an HRQL script triggering it; [""] when none applies *)
  fix : string;
}

val all : entry list
(** Every known code, in catalogue order (E, W, H, P, F). *)

val find : string -> entry option
(** Case-insensitive lookup by code. *)

val render : entry -> string
(** Multi-line human rendering: title line, meaning, indented example,
    fix. *)
