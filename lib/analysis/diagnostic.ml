module Loc = Hr_query.Loc

type severity = Error | Warning | Hint | Perf

type t = {
  code : string;
  severity : severity;
  loc : Loc.t;
  message : string;
  related : string list;
}

let make ?(related = []) severity ~code loc message =
  { code; severity; loc; message; related }

let error ?related ~code loc message = make ?related Error ~code loc message
let warning ?related ~code loc message = make ?related Warning ~code loc message
let hint ?related ~code loc message = make ?related Hint ~code loc message

let errorf ?related ~code loc fmt =
  Format.kasprintf (error ?related ~code loc) fmt

let warningf ?related ~code loc fmt =
  Format.kasprintf (warning ?related ~code loc) fmt

let hintf ?related ~code loc fmt = Format.kasprintf (hint ?related ~code loc) fmt
let perf ?related ~code loc message = make ?related Perf ~code loc message
let perff ?related ~code loc fmt = Format.kasprintf (perf ?related ~code loc) fmt

let severity_label = function
  | Error -> "error"
  | Warning -> "warning"
  | Hint -> "hint"
  | Perf -> "perf"

let severity_rank = function Error -> 0 | Warning -> 1 | Hint -> 2 | Perf -> 3

let compare a b =
  match Loc.compare a.loc b.loc with
  | 0 -> (
    match Int.compare (severity_rank a.severity) (severity_rank b.severity) with
    | 0 -> String.compare a.code b.code
    | c -> c)
  | c -> c

let sort ds = List.stable_sort compare ds

let has_errors ds = List.exists (fun d -> d.severity = Error) ds
let has_warnings ds = List.exists (fun d -> d.severity = Warning) ds

let pp ppf d =
  Format.fprintf ppf "%a %s[%s] %s" Loc.pp d.loc (severity_label d.severity)
    d.code d.message;
  List.iter (fun note -> Format.fprintf ppf "@.  note: %s" note) d.related

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json d =
  let { Loc.lo; hi } = d.loc in
  Printf.sprintf
    "{\"code\":\"%s\",\"severity\":\"%s\",\"loc\":{\"line\":%d,\"col\":%d,\"end_line\":%d,\"end_col\":%d},\"message\":\"%s\",\"related\":[%s]}"
    (json_escape d.code)
    (severity_label d.severity)
    lo.Loc.line lo.Loc.col hi.Loc.line hi.Loc.col (json_escape d.message)
    (String.concat "," (List.map (fun r -> "\"" ^ json_escape r ^ "\"") d.related))

let render_text ds =
  match ds with
  | [] -> "no issues\n"
  | ds ->
    let buf = Buffer.create 256 in
    List.iter (fun d -> Buffer.add_string buf (Format.asprintf "%a@." pp d)) ds;
    let count sev = List.length (List.filter (fun d -> d.severity = sev) ds) in
    let plural n noun = Printf.sprintf "%d %s%s" n noun (if n = 1 then "" else "s") in
    let parts =
      List.filter_map
        (fun (sev, noun) ->
          let n = count sev in
          if n = 0 then None else Some (plural n noun))
        [ (Error, "error"); (Warning, "warning"); (Hint, "hint"); (Perf, "perf note") ]
    in
    Buffer.add_string buf (String.concat ", " parts);
    Buffer.add_char buf '\n';
    Buffer.contents buf

let render_json ds =
  "[" ^ String.concat "," (List.map to_json ds) ^ "]\n"
