(** Hierarchy-aware cardinality and cost model.

    Walks an optimized plan bottom-up and annotates every node with
    estimated output rows and cumulative cost, without evaluating
    anything. Cardinalities come from a {!source} — either the live
    catalog or the analyzer's {!Sim_catalog} — through one interface, so
    `EXPLAIN ESTIMATE` and `hrdb lint` price plans the same way.

    The model quantifies the paper's central claim: hierarchy keeps
    queries cheap until something flattens them. A stored tuple costs
    one probe to scan; a selection costs one closure-index probe per
    input tuple; a join costs one subsumption test per operand pair; an
    EXPLICATE costs the size of the item cones it expands (the product
    of per-coordinate atomic extensions). Costs are abstract {e work
    units} — 1 unit ≈ one tuple visit or one closure-index probe — and
    are cumulative, inclusive of the subtree, like the time column of
    SQL EXPLAIN ANALYZE. *)

module Hierarchy = Hr_hierarchy.Hierarchy
module Ast = Hr_query.Ast
open Hierel

(* ---- statistics sources ----------------------------------------------- *)

type input = { rel : Relation.t; exact : bool }

type source = {
  find : string -> input option;
  observed : rel:string -> label:string -> int option;
      (* feedback from EXPLAIN ANALYZE (live catalogs only) *)
  hierarchies : unit -> Hierarchy.t list;
}

let of_catalog cat =
  {
    find =
      (fun name ->
        Option.map (fun rel -> { rel; exact = true }) (Catalog.find_relation cat name));
    observed = (fun ~rel ~label -> Catalog.observed_stat cat ~rel ~label);
    hierarchies = (fun () -> Catalog.hierarchies cat);
  }

let of_sim sim =
  {
    find =
      (fun name ->
        match Sim_catalog.find_relation sim name with
        | Some { Sim_catalog.rel; exact } -> Some { rel; exact }
        | None -> None);
    observed = (fun ~rel:_ ~label:_ -> None);
    hierarchies = (fun () -> Sim_catalog.hierarchies sim);
  }

(* ---- hierarchy statistics --------------------------------------------- *)

let extension_count h v =
  if Hierarchy.is_instance h v then 1 else List.length (Hierarchy.leaves_under h v)

let cone_size h v = List.length (Hierarchy.descendants h v)

let domain_width h = max 1 (List.length (Hierarchy.instances h))

(* Mean atomic extension of one stored value drawn from [h]: the expansion
   a flattening applies per attribute when the actual coordinates are not
   statically known. *)
let avg_extension h =
  let nodes = Hierarchy.nodes h in
  let total = List.fold_left (fun acc v -> acc + extension_count h v) 0 nodes in
  float_of_int total /. float_of_int (max 1 (List.length nodes))

(* ---- relation statistics ---------------------------------------------- *)

let stored_rows rel = Relation.cardinality rel

let exception_count rel =
  List.fold_left
    (fun acc (t : Relation.tuple) ->
      match t.Relation.sign with Types.Neg -> acc + 1 | Types.Pos -> acc)
    0 (Relation.tuples rel)

let is_flat rel =
  let schema = Relation.schema rel in
  List.for_all
    (fun (t : Relation.tuple) ->
      List.for_all
        (fun i ->
          Hierarchy.is_instance (Schema.hierarchy schema i) (Item.coord t.Relation.item i))
        (List.init (Schema.arity schema) Fun.id))
    (Relation.tuples rel)

(* Estimated flat cardinality of [EXPLICATE rel (over)]: per tuple, the
   product of the flattened coordinates' atomic extensions; negated
   tuples punch holes, so they subtract. Overlapping cones make this an
   upper bound — exact only when the relation is already flat. *)
let extension_rows ?over rel =
  let schema = Relation.schema rel in
  let indices =
    let all = List.init (Schema.arity schema) Fun.id in
    match over with
    | None -> all
    | Some attrs ->
      let names = Schema.names schema in
      List.filter (fun i -> List.mem (List.nth names i) attrs) all
  in
  let cone (t : Relation.tuple) =
    List.fold_left
      (fun acc i ->
        acc * extension_count (Schema.hierarchy schema i) (Item.coord t.Relation.item i))
      1 indices
  in
  let pos, neg =
    List.fold_left
      (fun (p, n) (t : Relation.tuple) ->
        match t.Relation.sign with
        | Types.Pos -> (p + cone t, n)
        | Types.Neg -> (p, n + cone t))
      (0, 0) (Relation.tuples rel)
  in
  max 0 (pos - neg)

(* ---- schema inference over plans -------------------------------------- *)

let rec schema_of src e =
  match e.Ast.expr with
  | Ast.Rel name ->
    Option.map
      (fun { rel; _ } ->
        let s = Relation.schema rel in
        List.mapi (fun i n -> (n, Schema.hierarchy s i)) (Schema.names s))
      (src.find name)
  | Ast.Select (e, _, _) | Ast.Consolidated e | Ast.Explicated (e, _) ->
    schema_of src e
  | Ast.Project (e, attrs) ->
    Option.map (List.filter (fun (n, _) -> List.mem n attrs)) (schema_of src e)
  | Ast.Rename (e, o, n) ->
    Option.map (List.map (fun (a, h) -> if a = o then (n, h) else (a, h)))
      (schema_of src e)
  | Ast.Join (a, b) -> (
    match schema_of src a, schema_of src b with
    | Some sa, Some sb ->
      Some (sa @ List.filter (fun (n, _) -> not (List.mem_assoc n sa)) sb)
    | _ -> None)
  | Ast.Union (a, _) | Ast.Intersect (a, _) | Ast.Except (a, _) -> schema_of src a

(* ---- the annotated plan ------------------------------------------------ *)

type node = {
  n_label : string;  (* same vocabulary as EXPLAIN ANALYZE *)
  n_loc : Hr_query.Loc.t;
  n_rows : float;  (* estimated output rows *)
  n_cost : float;  (* cumulative work units, inclusive of children *)
  n_exact : bool;  (* the row estimate is provably exact *)
  n_kind : kind;
  n_children : node list;
}

and kind =
  | Scan of string
  | Selection of { selectivity : float }
  | Joining of { cartesian : bool }
  | Flatten of { expansion : float }
  | Opaque

exception Unknown_relation of string

let default_selectivity = 1.0 /. 3.0

(* Selectivity of [attr = v] when all we have is the value name: the
   share of the domain's atomic extension that [v]'s cone covers. *)
let name_selectivity src vname =
  match
    List.filter (fun h -> Hierarchy.mem h vname) (src.hierarchies ())
  with
  | [ h ] ->
    let v = Hierarchy.find_exn h vname in
    let sel = float_of_int (extension_count h v) /. float_of_int (domain_width h) in
    Float.min 1.0 (Float.max sel (1.0 /. float_of_int (domain_width h)))
  | _ -> default_selectivity

let attr_index schema attr =
  let rec go i = function
    | [] -> None
    | n :: _ when n = attr -> Some i
    | _ :: rest -> go (i + 1) rest
  in
  go 0 (Schema.names schema)

let rec walk src e =
  let mk ?(exact = false) ~kind ~rows ~cost children =
    {
      n_label = Hr_query.Eval.node_label e;
      n_loc = e.Ast.eloc;
      n_rows = rows;
      n_cost = cost;
      n_exact = exact;
      n_kind = kind;
      n_children = children;
    }
  in
  match e.Ast.expr with
  | Ast.Rel name -> (
    match src.find name with
    | None -> raise (Unknown_relation name)
    | Some { rel; exact } ->
      let rows = float_of_int (stored_rows rel) in
      (mk ~exact ~kind:(Scan name) ~rows ~cost:rows [], Some (rel, exact)))
  | Ast.Select (sub, attr, v) ->
    let child, carried = walk src sub in
    let in_rows = child.n_rows in
    let vname = Ast.value_name v in
    let rows, exact =
      match carried with
      | Some (rel, rel_exact) -> (
        (* the stored relation is right beneath: count matching tuples
           statically, preferring a count EXPLAIN ANALYZE observed *)
        match
          src.observed ~rel:(Relation.name rel)
            ~label:(Printf.sprintf "%s=%s" attr vname)
        with
        | Some n -> (float_of_int n, false)
        | None -> (
          let schema = Relation.schema rel in
          match attr_index schema attr with
          | Some i when Hierarchy.mem (Schema.hierarchy schema i) vname ->
            let h = Schema.hierarchy schema i in
            let vnode = Hierarchy.find_exn h vname in
            let matches =
              List.length
                (List.filter
                   (fun (t : Relation.tuple) ->
                     Hierarchy.intersects h (Item.coord t.Relation.item i) vnode)
                   (Relation.tuples rel))
            in
            (* intersection is equality on instances, so the count is
               exact when neither side has a cone to expand *)
            let flat =
              Hierarchy.is_instance h vnode
              && List.for_all
                   (fun (t : Relation.tuple) ->
                     Hierarchy.is_instance h (Item.coord t.Relation.item i))
                   (Relation.tuples rel)
            in
            (float_of_int matches, rel_exact && flat)
          | _ -> (in_rows *. name_selectivity src vname, false)))
      | None -> (in_rows *. name_selectivity src vname, false)
    in
    let selectivity = if in_rows > 0.0 then rows /. in_rows else 1.0 in
    ( mk ~exact
        ~kind:(Selection { selectivity })
        ~rows
        ~cost:(child.n_cost +. in_rows)
        [ child ],
      None )
  | Ast.Project (sub, _) ->
    let child, _ = walk src sub in
    ( mk ~kind:Opaque ~rows:child.n_rows ~cost:(child.n_cost +. child.n_rows)
        [ child ],
      None )
  | Ast.Rename (sub, _, _) ->
    let child, carried = walk src sub in
    (mk ~exact:child.n_exact ~kind:Opaque ~rows:child.n_rows ~cost:child.n_cost [ child ], carried)
  | Ast.Join (a, b) ->
    let na, _ = walk src a in
    let nb, _ = walk src b in
    let shared =
      match schema_of src a, schema_of src b with
      | Some sa, Some sb -> List.filter (fun (n, _) -> List.mem_assoc n sb) sa
      | _ -> []
    in
    let pairs = na.n_rows *. nb.n_rows in
    let rows =
      match shared with
      | [] -> pairs (* cartesian product *)
      | _ :: _ ->
        let width =
          List.fold_left (fun acc (_, h) -> max acc (domain_width h)) 1 shared
        in
        pairs /. float_of_int width
    in
    ( mk
        ~kind:(Joining { cartesian = shared = [] })
        ~rows
        ~cost:(na.n_cost +. nb.n_cost +. pairs)
        [ na; nb ],
      None )
  | Ast.Union (a, b) ->
    let na, _ = walk src a in
    let nb, _ = walk src b in
    let rows = na.n_rows +. nb.n_rows in
    (mk ~kind:Opaque ~rows ~cost:(na.n_cost +. nb.n_cost +. rows) [ na; nb ], None)
  | Ast.Intersect (a, b) ->
    let na, _ = walk src a in
    let nb, _ = walk src b in
    ( mk ~kind:Opaque
        ~rows:(Float.min na.n_rows nb.n_rows)
        ~cost:(na.n_cost +. nb.n_cost +. (na.n_rows *. nb.n_rows))
        [ na; nb ],
      None )
  | Ast.Except (a, b) ->
    let na, _ = walk src a in
    let nb, _ = walk src b in
    ( mk ~kind:Opaque ~rows:na.n_rows
        ~cost:(na.n_cost +. nb.n_cost +. (na.n_rows *. nb.n_rows))
        [ na; nb ],
      None )
  | Ast.Consolidated sub ->
    let child, _ = walk src sub in
    (* pairwise redundancy sweep; consolidation only removes rows, so the
       input cardinality is a safe upper bound *)
    ( mk ~kind:Opaque ~rows:child.n_rows
        ~cost:(child.n_cost +. (child.n_rows *. child.n_rows))
        [ child ],
      None )
  | Ast.Explicated (sub, over) ->
    let child, carried = walk src sub in
    let rows, exact =
      match carried with
      | Some (rel, rel_exact) ->
        let rows = float_of_int (extension_rows ?over rel) in
        (rows, rel_exact && is_flat rel && exception_count rel = 0)
      | None ->
        let expansion =
          match schema_of src sub with
          | Some schema ->
            List.fold_left (fun acc (_, h) -> acc *. avg_extension h) 1.0 schema
          | None -> 1.0
        in
        (child.n_rows *. expansion, false)
    in
    let expansion = if child.n_rows > 0.0 then rows /. child.n_rows else 1.0 in
    ( mk ~exact
        ~kind:(Flatten { expansion })
        ~rows
        ~cost:(child.n_cost +. rows)
        [ child ],
      None )

let plan src expr =
  let optimized = Hr_query.Optimizer.optimize expr in
  match walk src optimized with
  | root, _ -> Ok (optimized, root)
  | exception Unknown_relation name ->
    Error (Printf.sprintf "unknown relation %S" name)

(* ---- lint thresholds (documented in docs/COST.md) ---------------------- *)

let cartesian_rows_threshold = 16.0
(** P300: a cartesian join is only worth flagging once its estimated
    output would exceed this many rows. *)

let explicate_cone_threshold = 64.0
(** P301: an unrestricted EXPLICATE whose estimated extension exceeds
    this many rows. *)

let rederive_cost_threshold = 8.0
(** P303: a subplan repeated verbatim is only flagged when one
    derivation of it costs at least this many work units. *)
