(* The one table every surface reads: [hrdb lint --explain CODE], the
   SARIF rule metadata, and the docs generator all quote these entries,
   so a code's meaning is written down exactly once. Codes are stable
   across releases (docs/LINT.md, docs/FSCK.md, docs/COST.md). *)

type entry = {
  code : string;
  title : string;
  severity : string;
  meaning : string;
  example : string;  (* an HRQL script triggering it; "" when none applies *)
  fix : string;
}

let e code title meaning example fix =
  { code; title; severity = "error"; meaning; example; fix }

let w code title meaning example fix =
  { code; title; severity = "warning"; meaning; example; fix }

let h code title meaning example fix =
  { code; title; severity = "hint"; meaning; example; fix }

let p code title meaning example fix =
  { code; title; severity = "perf"; meaning; example; fix }

let fc code title meaning fix =
  { code; title; severity = "fsck critical"; meaning; example = ""; fix }

let fw code title meaning fix =
  { code; title; severity = "fsck warning"; meaning; example = ""; fix }

let all =
  [
    (* ---- errors ------------------------------------------------------ *)
    e "E000" "syntax error"
      "The script does not lex or parse. Reported at the offending token; \
       nothing after it is checked."
      "CREATE NONSENSE;"
      "Fix the syntax; docs/HRQL.md has the full grammar.";
    e "E001" "unknown relation"
      "A statement or expression names a relation the script (or seeded \
       catalog) never defined."
      "SELECT * FROM nosuch;"
      "Define the relation first, or fix the name.";
    e "E002" "arity mismatch"
      "An INSERT/DELETE/ASK/EXPLAIN row has a different number of values \
       than the relation has attributes."
      "CREATE DOMAIN d; CREATE INSTANCE x OF d;\n\
       CREATE RELATION r (v: d);\n\
       INSERT INTO r VALUES (+ x, x);"
      "Give exactly one value per attribute, in schema order.";
    e "E003" "domain mismatch"
      "A value (or isa/preference endpoint) exists, but in a different \
       domain hierarchy than the attribute it is used under."
      "CREATE DOMAIN animal; CREATE INSTANCE tweety OF animal;\n\
       CREATE DOMAIN place;  CREATE INSTANCE antarctica OF place;\n\
       CREATE RELATION flies (who: animal);\n\
       INSERT INTO flies VALUES (+ antarctica);"
      "Use a member of the attribute's own domain hierarchy.";
    e "E004" "ALL on an instance"
      "ALL x universally quantifies over the members of a class; an \
       instance has no members, so the evaluator rejects the quantifier."
      "CREATE DOMAIN animal; CREATE INSTANCE tweety OF animal;\n\
       CREATE RELATION flies (who: animal);\n\
       INSERT INTO flies VALUES (+ ALL tweety);"
      "Drop the ALL (for the single instance) or quantify over a class.";
    e "E005" "isa cycle"
      "The edge would make a class transitively a subclass of itself, \
       violating the type-irredundancy constraint (paper, section 3.1)."
      "CREATE DOMAIN animal; CREATE CLASS bird UNDER animal;\n\
       CREATE ISA animal UNDER bird;"
      "Remove the back edge; isa must stay a DAG.";
    e "E006" "incompatible schemas"
      "UNION / INTERSECT / EXCEPT / DIFF operands must have identical \
       schemas (same attribute names, domains, and order); also raised \
       when a RENAME collides with an existing attribute."
      "CREATE DOMAIN d; CREATE RELATION a (v: d); CREATE RELATION b (v: d, w: d);\n\
       SELECT * FROM a UNION b;"
      "PROJECT/RENAME the operands to a common schema first.";
    e "E007" "join on disjoint domains"
      "The operands share an attribute name whose domains are different \
       hierarchies: the equi-join on it is always empty."
      "CREATE DOMAIN animal; CREATE DOMAIN place;\n\
       CREATE RELATION flies (who: animal);\n\
       CREATE RELATION guards (who: place);\n\
       SELECT * FROM flies JOIN guards;"
      "RENAME one side's attribute if a cartesian product was meant.";
    e "E008" "unknown name"
      "An attribute, class, instance, or domain that is defined nowhere: \
       a selection/projection/rename on a missing attribute, an insert of \
       an unknown value, a relation over an unknown domain."
      "CREATE DOMAIN d; CREATE RELATION r (v: d);\n\
       SELECT * FROM r WHERE nope = x;"
      "Define the name first, or fix the spelling.";
    e "E009" "duplicate definition"
      "Redefining an existing relation or domain, reusing a class or \
       instance name, or declaring (or projecting) the same attribute \
       twice."
      "CREATE DOMAIN d; CREATE RELATION r (v: d);\n\
       CREATE RELATION r (v: d);"
      "Drop the old definition first, or pick a fresh name.";
    e "E010" "invalid hierarchy edit / ambiguous name"
      "A structurally invalid hierarchy operation the other codes do not \
       cover: children under an instance, a member name ambiguous across \
       hierarchies, an invalid preference edge."
      "CREATE DOMAIN animal; CREATE INSTANCE tweety OF animal;\n\
       CREATE CLASS chick UNDER tweety;"
      "Only classes can have children; qualify ambiguous names.";
    e "E999" "internal analyzer error"
      "A check failed unexpectedly; reported instead of crashing so a \
       lint run always completes. Never expected in practice."
      ""
      "Please report scripts that trigger it.";
    (* ---- warnings ---------------------------------------------------- *)
    w "W101" "redundant isa edge"
      "The new edge is implied by an existing path. Legal, but it changes \
       off-path preemption results (paper, appendix, footnote 7)."
      "CREATE DOMAIN animal; CREATE CLASS bird UNDER animal;\n\
       CREATE CLASS penguin UNDER bird;\n\
       CREATE ISA penguin UNDER animal;"
      "Remove the redundant edge; the path already implies it.";
    w "W102" "dead row"
      "The inserted row is already implied by a more general stored row \
       of the same sign, and no opposite-sign row intersects it, so it \
       can neither change a verdict nor disambiguate a conflict."
      "CREATE DOMAIN animal; CREATE CLASS bird UNDER animal;\n\
       CREATE INSTANCE tweety OF bird;\n\
       CREATE RELATION flies (who: animal);\n\
       INSERT INTO flies VALUES (+ ALL bird);\n\
       INSERT INTO flies VALUES (+ tweety);"
      "Drop the row, or keep it only to pre-empt a planned negation.";
    w "W103" "shadowed negation"
      "Every instance the negated row covers is re-asserted by a strictly \
       more specific positive row, so under off-path preemption the \
       negation never wins anywhere."
      "CREATE DOMAIN animal; CREATE CLASS bird UNDER animal;\n\
       CREATE CLASS penguin UNDER bird; CREATE INSTANCE opus OF penguin;\n\
       CREATE RELATION flies (who: animal);\n\
       INSERT INTO flies VALUES (+ opus);\n\
       INSERT INTO flies VALUES (- ALL penguin);"
      "Negate a narrower class, or remove the shadowing positives.";
    w "W104" "ambiguity conflict"
      "The insert leaves the relation violating the ambiguity constraint \
       (paper, section 3.1): some item has incomparable strongest binders \
       of opposite sign. The evaluator's transaction would reject this at \
       commit."
      "CREATE DOMAIN animal;\n\
       CREATE CLASS bird UNDER animal;  CREATE CLASS swimmer UNDER animal;\n\
       CREATE CLASS penguin UNDER bird; CREATE ISA penguin UNDER swimmer;\n\
       CREATE RELATION eats (who: animal);\n\
       INSERT INTO eats VALUES (+ ALL bird);\n\
       INSERT INTO eats VALUES (- ALL swimmer);"
      "Add a preference edge or a more specific tie-breaking row.";
    w "W105" "unsatisfiable selection"
      "ANDed selections constrain the same attribute to values that are \
       disjoint under the paper's optimistic intersection rule: the \
       result is always empty."
      "CREATE DOMAIN animal;\n\
       CREATE INSTANCE rex OF animal; CREATE INSTANCE tweety OF animal;\n\
       CREATE RELATION flies (who: animal);\n\
       SELECT * FROM flies WHERE who = rex AND who = tweety;"
      "Drop one conjunct, or select on a shared ancestor class.";
    w "W106" "dead write"
      "A row this script asserts is unconditionally destroyed (by an \
       exact DELETE of the same item or DROP RELATION) before any later \
       statement reads the relation."
      "CREATE DOMAIN place; CREATE INSTANCE antarctica OF place;\n\
       CREATE RELATION guards (where_at: place);\n\
       INSERT INTO guards VALUES (+ antarctica);\n\
       DELETE FROM guards VALUES (antarctica);"
      "Remove the pointless insert (or the delete).";
    w "W107" "insert is a no-op under flattening"
      "Every atomic instance the inserted row covers already receives the \
       same sign from the stored tuples: flattening yields the same \
       extension with or without the row."
      "CREATE DOMAIN animal; CREATE CLASS bird UNDER animal;\n\
       CREATE CLASS penguin UNDER bird; CREATE INSTANCE tweety OF bird;\n\
       CREATE RELATION swims (who: animal);\n\
       INSERT INTO swims VALUES (+ ALL penguin), (+ tweety);\n\
       INSERT INTO swims VALUES (+ ALL bird);"
      "Drop the row; the more specific rows already cover it.";
    w "W108" "contradictory sign assertions across statements"
      "The row asserts the opposite sign on the exact item a previous \
       statement of this script asserted: the later sign silently \
       overwrites the earlier one."
      "CREATE DOMAIN animal; CREATE INSTANCE rex OF animal;\n\
       CREATE RELATION eats (who: animal);\n\
       INSERT INTO eats VALUES (+ rex);\n\
       INSERT INTO eats VALUES (- rex);"
      "Delete the earlier assertion explicitly if the flip is intended.";
    w "W109" "exception erases the entire parent extension"
      "The inserted negation is carved as an exception to a stored \
       positive generalization but covers every instance of it — the \
       positive assertion no longer holds anywhere."
      "CREATE DOMAIN water; CREATE CLASS fish UNDER water;\n\
       CREATE INSTANCE nemo OF fish;\n\
       CREATE RELATION dives (who: water);\n\
       INSERT INTO dives VALUES (+ ALL fish);\n\
       INSERT INTO dives VALUES (- nemo);"
      "Negate a strict subset, or delete the positive row instead.";
    w "W110" "conflicting statement pair"
      "The commutativity oracle (docs/EFFECTS.md) proves the two \
       statements write overlapping hierarchy cones that neither \
       subsumes: their outcome depends on statement order (ambiguity \
       acceptance is order-sensitive), so reordering or batching them \
       is unsafe. Subsumption-related overlaps — the paper's exception \
       idiom, a negation carved under its generalization — are \
       deliberately not reported."
      "CREATE DOMAIN animal; CREATE CLASS bird UNDER animal;\n\
       CREATE CLASS swimmer UNDER animal;\n\
       CREATE CLASS penguin UNDER bird;\n\
       CREATE ISA penguin UNDER swimmer;\n\
       CREATE RELATION dives (who: animal);\n\
       INSERT INTO dives VALUES (+ ALL swimmer);\n\
       INSERT INTO dives VALUES (- ALL bird);"
      "Make the intended order explicit (keep the statements adjacent), \
       or disambiguate the shared cone with a preference edge.";
    (* ---- hints ------------------------------------------------------- *)
    h "H201" "bare class value"
      "An insert row uses a class name without ALL. The row applies to \
       every member of the class exactly as if ALL had been written."
      "CREATE DOMAIN animal; CREATE CLASS bird UNDER animal;\n\
       CREATE RELATION flies (who: animal);\n\
       INSERT INTO flies VALUES (+ bird);"
      "Write ALL c to make the quantification visible, or pick an \
       instance if one element was meant.";
    h "H202" "projection drops the exception-carrying attribute"
      "The projection removes an attribute on which the relation carves \
       an exception with a negated class tuple; projection resolves the \
       collisions in favour of the positive tuple (paper, Fig. 11c), so \
       the exception structure is silently lost."
      "CREATE DOMAIN animal; CREATE CLASS bird UNDER animal;\n\
       CREATE CLASS penguin UNDER bird;\n\
       CREATE DOMAIN place; CREATE INSTANCE antarctica OF place;\n\
       CREATE RELATION lives (who: animal, where_at: place);\n\
       INSERT INTO lives VALUES (+ ALL bird, antarctica);\n\
       INSERT INTO lives VALUES (- ALL penguin, antarctica);\n\
       SELECT * FROM PROJECT lives ON (where_at);"
      "Keep the exception-carrying attribute in the projection, or \
       EXPLICATE first if flat semantics are wanted.";
    h "H203" "replica-replay advisory"
      "CONSOLIDATE and EXPLICATE rewrite stored tuples, but the WAL logs \
       only their source text: a replica re-derives the contents at \
       apply time. Deterministic, so advisory only."
      "CREATE DOMAIN animal; CREATE RELATION flies (who: animal);\n\
       CONSOLIDATE flies;"
      "Confirm convergence with hrdb fsck --against (docs/FSCK.md).";
    (* ---- perf notes (docs/COST.md) ----------------------------------- *)
    p "P300" "cartesian blowup"
      "A join whose operands share no attribute combines every pair of \
       tuples; the cost model estimates the product exceeds the \
       cartesian threshold (16 rows). Always advisory, like every P \
       code: exit codes are unaffected even under --strict."
      "CREATE DOMAIN a; CREATE DOMAIN b;\n\
       CREATE RELATION r (x: a); CREATE RELATION s (y: b);\n\
       SELECT * FROM r JOIN s;"
      "Share an attribute name to join on, or restrict the operands \
       first so the product stays small.";
    p "P301" "EXPLICATE over a large cone"
      "EXPLICATE (or an EXPLICATED expression) with no restricting \
       predicate materializes the whole atomic extension; the cost model \
       estimates it above the cone threshold (64 rows)."
      "-- with a class of many instances under d:\n\
       CREATE RELATION r (x: d, y: d);\n\
       INSERT INTO r VALUES (+ ALL d, ALL d);\n\
       EXPLICATE r;"
      "Select first (the optimizer pushes selections below the flatten), \
       or restrict with EXPLICATE r ON (class).";
    p "P302" "unselective conjunct evaluated first"
      "In WHERE a = v AND b = w the first conjunct is evaluated \
       innermost; the cost model estimates it keeps far more rows than \
       the later, more selective one, so the intermediate is needlessly \
       large."
      "-- x = d keeps everything, x = i1 keeps one row:\n\
       SELECT * FROM r WHERE x = d AND x = i1;"
      "Reorder the conjuncts so the most selective one comes first.";
    p "P303" "repeated re-derivation"
      "An identical subplan is computed more than once within one \
       expression and each derivation costs at least 8 work units."
      "LET v = (SELECT r WHERE x = a1) UNION (SELECT r WHERE x = a1);"
      "Bind the subexpression once with LET, or CONSOLIDATE the stored \
       relation so the derivation is cached.";
    p "P304" "self-join"
      "The same stored relation appears on both sides of a join — a \
       recursive pattern the optimizer cannot reorder or push \
       selections through."
      "SELECT * FROM r JOIN r;"
      "RENAME one side's attributes (making the intent explicit), and \
       restrict each side before joining.";
    p "P305" "unrouted scan under sharding"
      "The query selects a relation, but never on its first attribute — \
       the sharding key. A sharded router (docs/SHARDING.md) can restrict \
       its scatter only when the plan selects on the first attribute, so \
       this query fans out to every shard. Advisory, and meaningless on \
       single-node deployments."
      "CREATE DOMAIN animal; CREATE DOMAIN place;\n\
       CREATE INSTANCE rex OF animal; CREATE INSTANCE zoo OF place;\n\
       CREATE RELATION lives (who: animal, where_at: place);\n\
       SELECT * FROM lives WHERE where_at = zoo;"
      "Select on the first attribute too when possible, or order the \
       schema so the most-selected attribute comes first.";
    p "P306" "batch is provably parallelizable"
      "A run of consecutive mutating statements pairwise commutes (the \
       oracle proved every write-cone pair disjoint): a replica applies \
       them across domains (hrdb_replica --apply-domains K) and the \
       shard router overlaps them, so batching them in one round trip \
       loses nothing. Advisory, like every P code."
      "CREATE DOMAIN animal; CREATE CLASS bird UNDER animal;\n\
       CREATE CLASS fish UNDER animal;\n\
       CREATE RELATION flies (who: animal);\n\
       CREATE RELATION swims (who: animal);\n\
       INSERT INTO flies VALUES (+ ALL bird);\n\
       INSERT INTO swims VALUES (+ ALL fish);"
      "Nothing to fix — pipeline the run (docs/EFFECTS.md) if the \
       round trips matter.";
    (* ---- fsck findings (docs/FSCK.md) -------------------------------- *)
    fc "F000" "internal fsck error"
      "A check raised; never expected." "Please report the directory layout that triggers it.";
    fc "F001" "not a database directory"
      "The path lacks the meta/snapshot/WAL layout." "Point fsck at an hrdb data directory.";
    fw "F002" "meta unreadable or malformed"
      "The meta file exists but does not parse." "Restore meta from backup or re-checkpoint.";
    fc "F003" "snapshot does not decode"
      "snapshot.bin is corrupt." "Restore from a replica or an older checkpoint.";
    fw "F004" "snapshot re-encode differs"
      "Decode followed by re-encode is not byte-identical." "Re-checkpoint to rewrite the snapshot canonically.";
    fw "F005" "torn WAL tail"
      "At most one trailing record is incomplete; repaired on next open."
      "Open the database normally; the tail is truncated.";
    fc "F006" "mid-log corruption"
      "Intact records follow a corrupt one." "Recover from a replica; the local WAL is untrustworthy.";
    fc "F007" "non-monotone WAL LSNs"
      "Record LSNs are not contiguous and increasing." "Recover from a replica or the last good checkpoint.";
    fw "F008" "stale WAL records"
      "Records at or below base_lsn are dead weight." "Checkpoint to truncate the log.";
    fc "F009" "base_lsn disagreement"
      "meta's replay base contradicts the snapshot/WAL." "Restore meta to match the snapshot's LSN.";
    fc "F010" "WAL replay fails"
      "A logged statement no longer applies on top of the snapshot."
      "Recover from a replica or the last good checkpoint.";
    fc "F011" "hierarchy DAG cycle"
      "A stored isa graph has a cycle." "Restore from backup; the store violates its invariant.";
    fw "F012" "redundant isa edge"
      "A stored edge violates type-irredundancy." "Drop the redundant edge (it changes preemption).";
    fc "F013" "closure index mismatch"
      "The transitive-closure index disagrees with a naive DFS."
      "Delete graphs.bin; it is rebuilt on open.";
    fc "F014" "graphs.bin differs from recomputation"
      "The sidecar is stale or corrupt." "Delete graphs.bin; it is rebuilt on open.";
    fw "F015" "graphs.bin missing or undecodable"
      "No usable closure sidecar next to a snapshot." "None needed; it is rebuilt on open.";
    fc "F016" "peer divergence"
      "Two databases disagree at their greatest common LSN."
      "Rebuild the replica from a fresh snapshot of the primary.";
    fw "F017" "peers cannot be compared"
      "For example, a checkpoint discarded the common prefix."
      "Compare from a fresh base snapshot.";
    fw "F018" "ambiguity constraint violated"
      "A stored relation has an item with incomparable opposite-sign binders."
      "Add a preference edge or a disambiguating row, then re-store.";
    fc "F019" "published_lsn exceeds the durable head"
      "meta records a published catalog version beyond what the WAL covers: \
       visibility outran durability."
      "Recover from the WAL head; investigate how the watermark advanced.";
    fc "F020" "misplaced tuple"
      "A stored tuple's first coordinate routes to other shard(s) under the \
       shard map; routed reads that restrict their scatter would miss it."
      "Re-insert the tuple through the router, then delete the stray copy.";
    fc "F021" "cross-subtree replica missing or sign-flipped"
      "A tuple whose cover spans several shards is absent, or stored with \
       the opposite sign, on a covered shard."
      "Re-apply the tuple on the lagging shard (a crash window between \
       per-shard commits can leave this behind).";
    fc "F022" "shard map does not load"
      "The --against file looks like a shard map but does not parse."
      "Fix the map (format in docs/SHARDING.md).";
    fc "F023" "shard directory unavailable"
      "A shard's data directory is missing, unreadable, or does not \
       materialize (warning when the map simply lists none)."
      "Point the map's shard line at the shard's data directory.";
    fc "F024" "shards disagree on DDL"
      "Hierarchies or relation schemas differ across shards; the router \
       replicates every DDL statement, so a shard missed one."
      "Replay the missing DDL on the lagging shard, or rebuild it.";
    fc "F025" "page seal violation"
      "A pages.db page fails its CRC or header seal, the meta roots do \
       not decode, or the file has a partial trailing page (warning: a \
       crash mid-extension leaves one, and no committed state can \
       reference it)."
      "Restore from a replica or a snapshot image; the shadow-paged \
       commit never overwrites the previous root, so the prior epoch \
       may still open.";
    fc "F026" "dangling TID"
      "A B-tree index entry points at a tombstoned or absent tuple slot."
      "Rebuild the store from a snapshot image (hrdb dump + restore).";
    fc "F027" "duplicate TID reference"
      "One tuple slot is referenced twice by the index under the same \
       attribute; binding lookups would double-count it."
      "Rebuild the store from a snapshot image.";
    fc "F028" "B-tree order violation"
      "Keys out of order, a separator interval breached, or an index \
       key that disagrees with the tuple its TID addresses."
      "Rebuild the store from a snapshot image.";
    fw "F029" "free-space map inaccurate"
      "A free-space map entry disagrees with the page it describes; \
       placement may waste space or retry, but stored data is intact."
      "Harmless to data; re-checkpoint after the next mutation of the \
       affected page, or rebuild to repack.";
  ]

let find code =
  let target = String.uppercase_ascii code in
  List.find_opt (fun entry -> entry.code = target) all

let render entry =
  let b = Buffer.create 256 in
  Printf.bprintf b "%s — %s (%s)\n\n%s\n" entry.code entry.title entry.severity
    entry.meaning;
  if entry.example <> "" then begin
    Buffer.add_string b "\nexample:\n";
    String.split_on_char '\n' entry.example
    |> List.iter (fun line -> Printf.bprintf b "  %s\n" line)
  end;
  if entry.fix <> "" then Printf.bprintf b "\nfix: %s\n" entry.fix;
  Buffer.contents b
