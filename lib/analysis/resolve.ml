(** Name resolution against the simulated catalog, shared by the
    expression and statement checkers. Every failure is reported through
    [emit] and surfaces as [None] so callers can keep checking the rest
    of the statement. *)

module Hierarchy = Hr_hierarchy.Hierarchy
module Symbol = Hr_util.Symbol
module Ast = Hr_query.Ast

let domain_name h = Symbol.name (Hierarchy.domain h)

(* A value in the position of an attribute whose domain is [hier]:
   E003 when the name lives in a different domain, E008 when it is
   defined nowhere, E004 for [ALL] on an instance. *)
let value sim hier ~loc ~emit v =
  let name = Ast.value_name v in
  match Hierarchy.find hier name with
  | Some node -> (
    match v with
    | Ast.All _ when Hierarchy.is_instance hier node ->
      emit
        (Diagnostic.errorf ~code:"E004" loc
           "ALL %s: %s is an instance, not a class" name name);
      None
    | Ast.All _ | Ast.Atom _ -> Some node)
  | None -> (
    match Sim_catalog.hierarchies_containing sim name with
    | [] ->
      emit (Diagnostic.errorf ~code:"E008" loc "unknown class or instance %S" name);
      None
    | h :: _ ->
      emit
        (Diagnostic.errorf ~code:"E003" loc
           "%S belongs to domain %s, not %s (the attribute's domain)" name
           (domain_name h) (domain_name hier));
      None)

(* The unique hierarchy defining [name], for DDL statements that locate
   their hierarchy through a member name (mirrors the evaluator's
   [hierarchy_containing]). *)
let hierarchy_of_member sim ~loc ~emit name =
  match Sim_catalog.hierarchies_containing sim name with
  | [ h ] -> Some h
  | [] ->
    emit (Diagnostic.errorf ~code:"E008" loc "unknown class or instance %S" name);
    None
  | _ :: _ :: _ ->
    emit
      (Diagnostic.errorf ~code:"E010" loc "%S is ambiguous across hierarchies" name);
    None
