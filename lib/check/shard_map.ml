module Hierarchy = Hr_hierarchy.Hierarchy

type shard = { id : int; host : string; port : int; dir : string option }
type t = { shards : shard list; subtrees : (string * int) list; default : int }

(* ---- parsing --------------------------------------------------------- *)

exception Bad of string

let bad fmt = Format.kasprintf (fun m -> raise (Bad m)) fmt

let strip_comment line =
  match String.index_opt line '#' with
  | None -> line
  | Some i -> String.sub line 0 i

let words line =
  String.split_on_char ' ' line
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun w -> w <> "")

let parse_int what s =
  match int_of_string_opt s with
  | Some n when n >= 0 -> n
  | _ -> bad "malformed %s %S" what s

let parse_endpoint s =
  match String.rindex_opt s ':' with
  | None -> bad "malformed endpoint %S (want host:port)" s
  | Some i ->
    let host = String.sub s 0 i in
    let port = parse_int "port" (String.sub s (i + 1) (String.length s - i - 1)) in
    if host = "" then bad "malformed endpoint %S (empty host)" s;
    (host, port)

let parse text =
  let shards = ref [] and subtrees = ref [] and default = ref None in
  let declared id = List.exists (fun s -> s.id = id) !shards in
  let directive lineno line =
    match words line with
    | [] -> ()
    | "shard" :: id :: endpoint :: rest ->
      let id = parse_int "shard id" id in
      if declared id then bad "line %d: duplicate shard %d" lineno id;
      let host, port = parse_endpoint endpoint in
      let dir =
        match rest with
        | [] -> None
        | [ d ] -> Some d
        | _ -> bad "line %d: trailing words after shard directive" lineno
      in
      shards := { id; host; port; dir } :: !shards
    | [ "subtree"; name; id ] ->
      let id = parse_int "shard id" id in
      if not (declared id) then
        bad "line %d: subtree %s names undeclared shard %d" lineno name id;
      if List.mem_assoc name !subtrees then
        bad "line %d: duplicate subtree %s" lineno name;
      subtrees := (name, id) :: !subtrees
    | [ "default"; id ] ->
      let id = parse_int "shard id" id in
      if not (declared id) then bad "line %d: default names undeclared shard %d" lineno id;
      if !default <> None then bad "line %d: duplicate default directive" lineno;
      default := Some id
    | w :: _ -> bad "line %d: unknown directive %S" lineno w
  in
  match
    String.split_on_char '\n' text
    |> List.iteri (fun i line -> directive (i + 1) (strip_comment line))
  with
  | exception Bad m -> Error m
  | () ->
    let shards = List.sort (fun a b -> compare a.id b.id) !shards in
    if shards = [] then Error "shard map declares no shards"
    else
      let default =
        match !default with Some d -> d | None -> (List.hd shards).id
      in
      Ok { shards; subtrees = List.rev !subtrees; default }

let load path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error m -> Error m
  | text -> parse text

let render t =
  let b = Buffer.create 256 in
  List.iter
    (fun s ->
      Buffer.add_string b
        (Printf.sprintf "shard %d %s:%d%s\n" s.id s.host s.port
           (match s.dir with None -> "" | Some d -> " " ^ d)))
    t.shards;
  List.iter
    (fun (name, id) -> Buffer.add_string b (Printf.sprintf "subtree %s %d\n" name id))
    t.subtrees;
  Buffer.add_string b (Printf.sprintf "default %d\n" t.default);
  Buffer.contents b

(* ---- lookups --------------------------------------------------------- *)

let shard t id = List.find_opt (fun s -> s.id = id) t.shards
let ids t = List.map (fun s -> s.id) t.shards

(* The routing rule. A declared root that merely intersects [n] may hold
   conflicting or inherited facts relevant to [n], so its shard is
   covered; only a root that subsumes [n] outright makes [n] "at home"
   somewhere, hence the default shard steps in exactly when none does.
   This keeps both invariants the merge relies on: every tuple relevant
   to a node is on some covered shard, and any two conflicting tuples
   share at least one covered shard (their first coordinates intersect,
   so every root subsuming one intersects the other). *)
let cover t h n =
  let covered = ref [] and subsumed = ref false in
  List.iter
    (fun (name, id) ->
      match Hierarchy.find h name with
      | None -> ()
      | Some r ->
        if Hierarchy.intersects h r n && not (List.mem id !covered) then
          covered := id :: !covered;
        if Hierarchy.subsumes h r n then subsumed := true)
    t.subtrees;
  if (not !subsumed) && not (List.mem t.default !covered) then
    covered := t.default :: !covered;
  List.sort compare !covered

let looks_like_map path = Sys.file_exists path && not (Sys.is_directory path)
