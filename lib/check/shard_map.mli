(** Durable shard maps: which backend shard owns which hierarchy subtree.

    A shard map is a small text file shared by the router
    ([hrdb_server --router --shard-map FILE]) and the offline verifier
    ([hrdb fsck DIR --against FILE]). It lists the backend shards and
    assigns each named subtree root to one of them; tuples are routed by
    the subtree(s) their first coordinate falls under (see
    [docs/SHARDING.md]).

    Format, one directive per line ([#] starts a comment):

    {v
    shard <id> <host>:<port> [<data-dir>]
    subtree <node-name> <shard-id>
    default <shard-id>
    v}

    [shard] declares a backend. The optional data directory is only used
    by fsck (the router talks to shards over the wire); omitting it
    skips that shard's offline placement checks. [subtree] pins the
    subtree rooted at [<node-name>] (a class in some hierarchy) to a
    shard. [default] names the shard that owns every node no declared
    subtree root subsumes; it defaults to the lowest declared shard id. *)

type shard = {
  id : int;
  host : string;
  port : int;
  dir : string option;  (** data directory, for offline fsck *)
}

type t = {
  shards : shard list;  (** sorted by id, ids unique *)
  subtrees : (string * int) list;  (** subtree root name -> owning shard *)
  default : int;  (** owner of nodes under no declared subtree *)
}

val parse : string -> (t, string) result
(** Parses the text of a shard map. [Error] describes the first problem
    (syntax, duplicate shard id, directive referencing an undeclared
    shard, no shards at all). *)

val load : string -> (t, string) result
(** [parse] over a file's contents; [Error] on unreadable files. *)

val render : t -> string
(** Canonical text for a map ([parse (render t)] round-trips). *)

val shard : t -> int -> shard option
val ids : t -> int list
(** Declared shard ids, ascending. *)

val cover :
  t -> Hr_hierarchy.Hierarchy.t -> Hr_hierarchy.Hierarchy.node -> int list
(** [cover map h n] is the ascending list of shards a tuple whose first
    coordinate is [n] must live on: every shard whose declared subtree
    root (resolved by name in [h]; names absent from [h] are ignored)
    intersects [n], plus the default shard when no declared root
    subsumes [n]. Never empty. A singleton means [n] is local to one
    shard (the paper's exception locality); several shards mean the
    tuple is a cross-subtree generalization and is replicated. *)

val looks_like_map : string -> bool
(** Whether a path names a regular file (as opposed to a database
    directory) — how [hrdb fsck --against] decides between peer-replica
    mode and shard-map mode. *)
