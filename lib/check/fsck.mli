(** [hrdb fsck] — offline verification of a database directory's durable
    invariants.

    The running system maintains the paper's structural invariants
    implicitly: hierarchy DAGs stay acyclic and transitively reduced
    (type-irredundancy, §3.1 and Appendix), every relation's subsumption
    graph is the transitive reduction of the subsumption order (§2.1),
    and relations satisfy the ambiguity constraint. Once state is
    persisted — snapshot, WAL, graph sidecar, replica copies — nothing
    re-checks any of it. This module opens a directory {e read-only}
    (no lock is taken, nothing is written, no query is executed on
    behalf of a caller) and verifies:

    - [meta] is well-formed and [base_lsn] agrees with the snapshot's
      presence and the first WAL record;
    - [snapshot.bin] decodes, and re-encodes to the same bytes;
    - [wal.log] framing: the shared {!Hr_storage.Wal.scan} reader finds
      monotone, contiguous LSNs, and distinguishes a crash-torn tail
      from mid-log corruption (intact records after a corrupt one);
    - the WAL replays cleanly onto the snapshot;
    - each hierarchy DAG is acyclic, irredundant (no redundant [isa]
      edges) and its reachability closure agrees with a naive traversal;
    - [graphs.bin] (the checkpoint sidecar, {!Hr_storage.Graph_store})
      is byte-equal to a recomputation from the snapshot;
    - each relation satisfies the ambiguity constraint;
    - optionally, a peer directory (primary vs replica) materializes to
      the same flattened state at the greatest common LSN.

    When [--against] names a {!Shard_map} file instead of a directory,
    the run verifies a sharded deployment instead (codes F020–F024):
    every shard directory listed in the map passes the battery above,
    all shards agree on DDL, every stored tuple lies on a shard in the
    cover of its first coordinate, and cross-subtree tuples are
    replicated with consistent signs on every covered shard
    (docs/SHARDING.md).

    Finding codes are stable (CI greps them); the catalog lives in
    [docs/FSCK.md]. *)

type severity = Critical | Warning

type finding = {
  code : string;  (** stable, [F]-prefixed *)
  severity : severity;
  where : string;  (** file or object the finding is about *)
  message : string;
}

type report = {
  dir : string;
  against : string option;
  findings : finding list;  (** in check order; [[]] means clean *)
  wal_records : int;  (** intact records scanned *)
  hierarchies : int;  (** in the materialized catalog (0 if none) *)
  relations : int;
  head_lsn : int;  (** last durable LSN: max of base_lsn and the WAL *)
  base_lsn : int;
  duration_ns : int;
}

val run : ?against:string -> string -> report
(** Verifies [dir]; with [against], also verifies the peer directory and
    cross-checks the two for divergence at their greatest common LSN —
    or, when [against] is a regular file, loads it as a {!Shard_map}
    and verifies the sharded deployment it describes.
    Never raises — unexpected exceptions become an [F000] finding.
    Counted in the [fsck.*] metrics (docs/OBSERVABILITY.md). *)

val clean : report -> bool
val has_critical : report -> bool

val severity_label : severity -> string

val render_text : report -> string
(** One line per finding plus a summary line (paths, counts, duration). *)

val render_json : report -> string
