module Wal = Hr_storage.Wal
module Snapshot = Hr_storage.Snapshot
module Graph_store = Hr_storage.Graph_store
module Page_store = Hr_storage.Page_store
module Pager = Hr_storage.Pager
module Hierarchy = Hr_hierarchy.Hierarchy
module Eval = Hr_query.Eval
module J = Hr_obs.Jsonout
open Hierel

let m_runs = Hr_obs.Metrics.counter "fsck.runs"
let m_critical = Hr_obs.Metrics.counter "fsck.findings_critical"
let m_warning = Hr_obs.Metrics.counter "fsck.findings_warning"
let h_duration = Hr_obs.Metrics.histogram "fsck.duration_ns"

type severity = Critical | Warning

type finding = {
  code : string;
  severity : severity;
  where : string;
  message : string;
}

type report = {
  dir : string;
  against : string option;
  findings : finding list;
  wal_records : int;
  hierarchies : int;
  relations : int;
  head_lsn : int;
  base_lsn : int;
  duration_ns : int;
}

let severity_label = function Critical -> "critical" | Warning -> "warning"

let snapshot_path dir = Filename.concat dir "snapshot.bin"
let pages_path dir = Filename.concat dir "pages.db"
let wal_path dir = Filename.concat dir "wal.log"
let meta_path dir = Filename.concat dir "meta"
let graphs_path dir = Filename.concat dir "graphs.bin"

(* ---- finding accumulation ------------------------------------------- *)

type acc = { mutable findings : finding list (* newest first *) }

let emit acc severity code where fmt =
  Format.kasprintf
    (fun message ->
      acc.findings <- { code; severity; where; message } :: acc.findings)
    fmt

(* ---- per-directory structural state --------------------------------- *)

type state = {
  s_dir : string;
  s_base : int;  (** meta's base_lsn (0 when absent or malformed) *)
  s_scan : Wal.scan_result;
  s_snap : Catalog.t option;  (** decoded snapshot, pre-replay *)
  s_cat : Catalog.t option;  (** snapshot + clean WAL replay *)
}

let s_head st =
  List.fold_left (fun h { Wal.lsn; _ } -> max h lsn) st.s_base st.s_scan.Wal.records

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* [meta] is forgiving at open time (Db treats anything unreadable as 0);
   fsck distinguishes absent (fine) from malformed (F002). *)
let check_meta acc dir =
  let path = meta_path dir in
  if not (Sys.file_exists path) then 0
  else
    let line =
      match String.trim (read_file path) with
      | exception Sys_error _ -> None
      | s -> ( match String.split_on_char '\n' s with l :: _ -> Some l | [] -> Some "")
    in
    match line with
    | None ->
      emit acc Warning "F002" path "meta is unreadable";
      0
    | Some line -> (
      match String.split_on_char '=' (String.trim line) with
      | [ "base_lsn"; n ] -> (
        match int_of_string_opt n with
        | Some n when n >= 0 -> n
        | _ ->
          emit acc Warning "F002" path "meta has a malformed base_lsn value: %S" line;
          0)
      | _ ->
        emit acc Warning "F002" path "meta is malformed: %S" line;
        0)

(* Page-level battery (F025–F029) for paged directories: open the page
   store, sweep the page seals, B-tree, index↔heap agreement and
   free-space map, and hand back the materialized catalog plus the LSN
   the store covers through. A partial trailing page is a warning —
   only a crash mid-extension leaves one, and the commit ordering
   (data flushed before the meta-root swap) guarantees no committed
   state references it. *)
let check_pages acc dir =
  let path = pages_path dir in
  let size = (Unix.stat path).Unix.st_size in
  if size mod Pager.page_size <> 0 then
    emit acc Warning "F025" path
      "partial trailing page: file is %d byte(s), %d past a page boundary \
       (crash mid-extension; unreferenced by any committed root)"
      size (size mod Pager.page_size);
  match Page_store.open_ path with
  | exception Page_store.Corrupt msg ->
    emit acc Critical "F025" path "page store does not open: %s" msg;
    None
  | store ->
    Fun.protect
      ~finally:(fun () -> Page_store.close store)
      (fun () ->
        List.iter
          (fun { Page_store.kind; detail } ->
            match kind with
            | Page_store.Checksum -> emit acc Critical "F025" path "%s" detail
            | Page_store.Dangling_tid -> emit acc Critical "F026" path "%s" detail
            | Page_store.Duplicate_tid -> emit acc Critical "F027" path "%s" detail
            | Page_store.Btree_order -> emit acc Critical "F028" path "%s" detail
            | Page_store.Freemap -> emit acc Warning "F029" path "%s" detail)
          (Page_store.check store);
        match Page_store.to_catalog store with
        | cat -> Some (cat, Page_store.base_lsn store)
        | exception e ->
          (* any escape here is corrupt page content the sweeps above
             have usually already pinned down *)
          emit acc Critical "F025" path "page store does not materialize: %s"
            (match e with Page_store.Corrupt m -> m | e -> Printexc.to_string e);
          None)

let check_snapshot acc dir =
  let path = snapshot_path dir in
  if not (Sys.file_exists path) then None
  else
    let data = read_file path in
    match Snapshot.decode data with
    | exception Snapshot.Corrupt_snapshot msg ->
      emit acc Critical "F003" path "snapshot does not decode: %s" msg;
      None
    | cat ->
      (* The encoder is canonical (sorted hierarchies and relations), so
         a decodable snapshot that does not round-trip byte-for-byte was
         not produced by this checkpointer — worth an operator's look. *)
      if not (String.equal (Snapshot.encode cat) data) then
        emit acc Warning "F004" path
          "snapshot decodes but does not round-trip to the same bytes";
      Some cat

let check_wal acc dir ~base_lsn =
  let path = wal_path dir in
  let scan = Wal.scan path in
  (match scan.Wal.tail with
  | None -> ()
  | Some { Wal.dropped_bytes; dropped_records } ->
    if dropped_records > 1 then
      emit acc Critical "F006" path
        "mid-log corruption: %d intact-looking record(s) (%d byte(s)) follow a \
         corrupt record and cannot be replayed"
        dropped_records dropped_bytes
    else
      emit acc Warning "F005" path
        "torn tail: %d byte(s) (~%d record(s)) past the last intact record"
        dropped_bytes dropped_records);
  (* LSNs must be strictly increasing and contiguous: the primary assigns
     consecutive numbers and a replica preserves them, so a gap or
     reversal means lost or reordered records. *)
  let rec contiguity = function
    | { Wal.lsn = a; _ } :: ({ Wal.lsn = b; _ } :: _ as rest) ->
      if b <> a + 1 then
        emit acc Critical "F007" path
          "LSNs are not monotone/contiguous: record %d is followed by record %d" a b;
      contiguity rest
    | _ -> ()
  in
  contiguity scan.Wal.records;
  let stale = List.filter (fun { Wal.lsn; _ } -> lsn <= base_lsn) scan.Wal.records in
  if stale <> [] then
    emit acc Warning "F008" path
      "%d record(s) at or below base_lsn %d (checkpoint interrupted before the log \
       was truncated); recovery skips them"
      (List.length stale) base_lsn;
  (match List.find_opt (fun { Wal.lsn; _ } -> lsn > base_lsn) scan.Wal.records with
  | Some { Wal.lsn; _ } when lsn <> base_lsn + 1 ->
    emit acc Critical "F009" path
      "meta disagrees with the log: base_lsn is %d but the first post-snapshot \
       record is LSN %d (records %d..%d are missing)"
      base_lsn lsn (base_lsn + 1) (lsn - 1)
  | Some _ | None -> ());
  scan

(* The commit point records the newest publishable catalog version in
   meta ("published_lsn="; docs/CONCURRENCY.md). Visibility must never
   outrun durability: a published LSN beyond the durable head means
   reader domains could have served state a crash has since destroyed.
   The line is optional — directories written by older builds predate
   it — and only its relation to the head is checked here. *)
let check_published acc dir ~head =
  let path = meta_path dir in
  if Sys.file_exists path then
    match String.trim (read_file path) with
    | exception Sys_error _ -> ()
    | contents ->
      List.iter
        (fun line ->
          match String.split_on_char '=' (String.trim line) with
          | [ "published_lsn"; n ] -> (
            match int_of_string_opt n with
            | Some p when p >= 0 ->
              if p > head then
                emit acc Critical "F019" path
                  "published_lsn %d exceeds the durable head LSN %d: a published \
                   version claimed visibility beyond what is durable"
                  p head
            | Some _ | None ->
              emit acc Warning "F002" path "meta has a malformed published_lsn value: %S"
                line)
          | _ -> ())
        (String.split_on_char '\n' contents)

(* WAL replay onto a freshly materialized base state (page store or
   legacy snapshot); a record that fails means the base and the log
   disagree. *)
let replay_records acc dir ~base_lsn scan cat =
  let live = List.filter (fun { Wal.lsn; _ } -> lsn > base_lsn) scan.Wal.records in
  let ok =
    List.for_all
      (fun { Wal.lsn; stmt } ->
        match Eval.run_script cat stmt with
        | Ok _ -> true
        | Error msg ->
          emit acc Critical "F010" (wal_path dir)
            "record LSN %d (%S) fails to replay onto the checkpoint: %s" lsn stmt msg;
          false
        | exception e ->
          emit acc Critical "F010" (wal_path dir)
            "record LSN %d (%S) fails to replay onto the checkpoint: %s" lsn stmt
            (Printexc.to_string e);
          false)
      live
  in
  if ok then Some cat else None

(* Replay onto a second decode of the snapshot: the caller keeps the
   pristine decoded catalog for the graphs.bin comparison. *)
let materialize acc dir ~base_lsn scan =
  let cat =
    if Sys.file_exists (snapshot_path dir) then
      match Snapshot.read_file (snapshot_path dir) with
      | cat -> Some cat
      | exception Snapshot.Corrupt_snapshot _ -> None
    else Some (Catalog.create ())
  in
  match cat with
  | None -> None
  | Some cat -> replay_records acc dir ~base_lsn scan cat

(* ---- semantic checks on a materialized catalog ---------------------- *)

let naive_descendants h v =
  let seen = Hashtbl.create 16 in
  let rec go v =
    if not (Hashtbl.mem seen v) then begin
      Hashtbl.add seen v ();
      List.iter go (Hierarchy.children h v)
    end
  in
  go v;
  seen

(* Hierarchies cannot represent cycles by construction ([add_isa]
   rejects them), so F011 firing means the in-memory invariant itself
   was broken — defense in depth, and the check is also what makes the
   F013 closure comparison meaningful. *)
let check_hierarchy acc dir h =
  let name = Hr_util.Symbol.name (Hierarchy.domain h) in
  let where = Printf.sprintf "%s: hierarchy %s" dir name in
  let label = Hierarchy.node_label h in
  let nodes = Hierarchy.nodes h in
  let cycle =
    let color = Hashtbl.create 16 in
    (* 1 = on stack, 2 = done *)
    let rec visit v =
      match Hashtbl.find_opt color v with
      | Some 1 -> true
      | Some _ -> false
      | None ->
        Hashtbl.replace color v 1;
        let c = List.exists visit (Hierarchy.children h v) in
        Hashtbl.replace color v 2;
        c
    in
    List.exists visit nodes
  in
  if cycle then
    emit acc Critical "F011" where
      "the isa graph contains a cycle (type-irredundancy violation)"
  else begin
    List.iter
      (fun (Hierarchy.Redundant_isa_edge (u, v)) ->
        emit acc Warning "F012" where
          "redundant isa edge %s -> %s (implied by another path; changes off-path \
           preemption)"
          (label u) (label v))
      (Hierarchy.validate h);
    (* Closure index vs. a naive traversal. Full pairwise comparison is
       quadratic, so large hierarchies are checked over a prefix. *)
    let sample = if List.length nodes > 128 then List.filteri (fun i _ -> i < 128) nodes else nodes in
    let broken = ref false in
    List.iter
      (fun a ->
        if not !broken then begin
          let naive = naive_descendants h a in
          List.iter
            (fun b ->
              if (not !broken) && Hierarchy.subsumes h a b <> Hashtbl.mem naive b
              then begin
                broken := true;
                emit acc Critical "F013" where
                  "closure index disagrees with the DAG: subsumes(%s, %s) = %b but \
                   traversal says %b"
                  (label a) (label b)
                  (Hierarchy.subsumes h a b)
                  (Hashtbl.mem naive b)
              end)
            sample
        end)
      sample
  end

let check_relation acc dir rel =
  let where = Printf.sprintf "%s: relation %s" dir (Relation.name rel) in
  match Integrity.first_conflict rel with
  | None -> ()
  | Some conflict ->
    emit acc Warning "F018" where "ambiguity constraint violated: %s"
      (Format.asprintf "%a" (Integrity.pp_conflict (Relation.schema rel)) conflict)

let check_graphs acc dir snap =
  let path = graphs_path dir in
  match (snap, Sys.file_exists path) with
  | None, _ -> ()
  | Some _, false ->
    emit acc Warning "F015" path
      "graphs.bin is missing next to snapshot.bin (pre-sidecar checkpoint?); \
       re-checkpoint to regenerate it"
  | Some cat, true -> (
    let data = read_file path in
    match Graph_store.decode data with
    | exception Graph_store.Corrupt_graphs msg ->
      emit acc Warning "F015" path "graphs.bin does not decode: %s" msg
    | stored ->
      if not (String.equal (Graph_store.encode cat) data) then begin
        let recomputed = Graph_store.of_catalog cat in
        let names l = List.map fst l in
        let missing =
          List.filter (fun n -> not (List.mem n (names stored))) (names recomputed)
        in
        let extra =
          List.filter (fun n -> not (List.mem n (names recomputed))) (names stored)
        in
        let differing =
          List.filter_map
            (fun (n, g) ->
              match List.assoc_opt n stored with
              | Some g' when g' <> g -> Some n
              | _ -> None)
            recomputed
        in
        let detail =
          String.concat "; "
            (List.filter_map
               (fun (what, l) ->
                 if l = [] then None
                 else Some (what ^ " " ^ String.concat ", " l))
               [ ("stale graph for", differing); ("missing", missing); ("orphaned", extra) ])
        in
        emit acc Critical "F014" path
          "stored subsumption graphs differ from recomputation%s"
          (if detail = "" then " (encoding drift)" else ": " ^ detail)
      end)

(* ---- one directory --------------------------------------------------- *)

let inspect acc dir =
  if not (Sys.file_exists dir && Sys.is_directory dir) then begin
    emit acc Critical "F001" dir "not a database directory";
    None
  end
  else begin
    let meta_base = check_meta acc dir in
    let paged = Sys.file_exists (pages_path dir) in
    let snap = check_snapshot acc dir in
    let pages = if paged then check_pages acc dir else None in
    (* The effective base is the page store's committed LSN when there
       is one: a crash between the page commit and the meta rewrite
       legitimately leaves meta one checkpoint behind. The reverse —
       meta claiming coverage the store does not have — is real
       corruption. *)
    let base_lsn =
      match pages with
      | Some (_, store_base) ->
        if meta_base > store_base then
          emit acc Critical "F009" (meta_path dir)
            "meta records base_lsn %d but the page store only covers through LSN %d"
            meta_base store_base;
        store_base
      | None -> meta_base
    in
    if
      (not paged) && base_lsn > 0 && snap = None
      && not (Sys.file_exists (snapshot_path dir))
    then
      emit acc Critical "F009" (meta_path dir)
        "meta records base_lsn %d but there is no snapshot to cover LSNs 1..%d"
        base_lsn base_lsn;
    let scan = check_wal acc dir ~base_lsn in
    let head =
      List.fold_left (fun h { Wal.lsn; _ } -> max h lsn) base_lsn scan.Wal.records
    in
    check_published acc dir ~head;
    let cat =
      match pages with
      | Some (cat, _) -> replay_records acc dir ~base_lsn scan cat
      | None -> materialize acc dir ~base_lsn scan
    in
    (match cat with
    | Some cat ->
      List.iter (check_hierarchy acc dir) (Catalog.hierarchies cat);
      List.iter (check_relation acc dir) (Catalog.relations cat)
    | None -> ());
    check_graphs acc dir snap;
    Some { s_dir = dir; s_base = base_lsn; s_scan = scan; s_snap = snap; s_cat = cat }
  end

(* ---- divergence ------------------------------------------------------ *)

(* Node ids are catalog-local, so both sides are compared through
   process-independent renderings: hierarchy edges as label pairs and
   relations by their flattened extension (the paper's semantic
   yardstick — two catalogs that flatten alike answer alike). *)
let rendered_hierarchy h =
  let label = Hierarchy.node_label h in
  let edges =
    List.concat_map
      (fun v -> List.map (fun c -> (label v, label c)) (Hierarchy.children h v))
      (Hierarchy.nodes h)
    |> List.sort compare
  in
  let instances = List.sort compare (List.map label (Hierarchy.instances h)) in
  let prefs =
    List.sort compare
      (List.map (fun (w, s) -> (label w, label s)) (Hierarchy.preference_edges h))
  in
  (edges, instances, prefs)

let rendered_extension rel =
  let schema = Relation.schema rel in
  Flatten.extension_list rel |> List.map (Item.to_string schema) |> List.sort compare

(* The peer state at LSN [at]: the checkpoint base (page store or
   legacy snapshot) + the records up to [at]. *)
let materialize_at st ~at =
  if st.s_base > at then
    Error
      (Printf.sprintf "checkpoint covers through LSN %d, past the common LSN %d"
         st.s_base at)
  else
    let cat =
      if Sys.file_exists (pages_path st.s_dir) then
        match Page_store.open_ (pages_path st.s_dir) with
        | exception Page_store.Corrupt msg -> Error ("pages: " ^ msg)
        | store ->
          Fun.protect
            ~finally:(fun () -> Page_store.close store)
            (fun () ->
              match Page_store.to_catalog store with
              | cat -> Ok cat
              | exception Page_store.Corrupt msg -> Error ("pages: " ^ msg))
      else if Sys.file_exists (snapshot_path st.s_dir) then
        match Snapshot.read_file (snapshot_path st.s_dir) with
        | cat -> Ok cat
        | exception Snapshot.Corrupt_snapshot msg -> Error ("snapshot: " ^ msg)
      else Ok (Catalog.create ())
    in
    Result.bind cat (fun cat ->
        let live =
          List.filter
            (fun { Wal.lsn; _ } -> lsn > st.s_base && lsn <= at)
            st.s_scan.Wal.records
        in
        let rec replay = function
          | [] -> Ok cat
          | { Wal.lsn; stmt } :: rest -> (
            match Eval.run_script cat stmt with
            | Ok _ -> replay rest
            | Error msg -> Error (Printf.sprintf "replay of LSN %d: %s" lsn msg)
            | exception e ->
              Error (Printf.sprintf "replay of LSN %d: %s" lsn (Printexc.to_string e)))
        in
        replay live)

let check_divergence acc a b =
  let at = min (s_head a) (s_head b) in
  let where = Printf.sprintf "%s vs %s @ LSN %d" a.s_dir b.s_dir at in
  match (materialize_at a ~at, materialize_at b ~at) with
  | Error msg, _ ->
    emit acc Warning "F017" where "cannot compare: %s (%s)" msg a.s_dir
  | _, Error msg ->
    emit acc Warning "F017" where "cannot compare: %s (%s)" msg b.s_dir
  | Ok ca, Ok cb ->
    let dom h = Hr_util.Symbol.name (Hierarchy.domain h) in
    let doms c = List.sort compare (List.map dom (Catalog.hierarchies c)) in
    let da, db = (doms ca, doms cb) in
    if da <> db then
      emit acc Critical "F016" where "hierarchy sets differ: [%s] vs [%s]"
        (String.concat ", " da) (String.concat ", " db)
    else
      List.iter
        (fun d ->
          if
            rendered_hierarchy (Catalog.hierarchy ca d)
            <> rendered_hierarchy (Catalog.hierarchy cb d)
          then
            emit acc Critical "F016" where
              "hierarchy %s differs between the two directories" d)
        da;
    let rels c =
      List.sort compare (List.map Relation.name (Catalog.relations c))
    in
    let ra, rb = (rels ca, rels cb) in
    if ra <> rb then
      emit acc Critical "F016" where "relation sets differ: [%s] vs [%s]"
        (String.concat ", " ra) (String.concat ", " rb)
    else
      List.iter
        (fun n ->
          let la = Catalog.relation ca n and lb = Catalog.relation cb n in
          if
            Schema.names (Relation.schema la) <> Schema.names (Relation.schema lb)
          then
            emit acc Critical "F016" where "relation %s: schemas differ" n
          else if rendered_extension la <> rendered_extension lb then
            emit acc Critical "F016" where
              "relation %s: flattened extensions differ at LSN %d" n at)
        ra

(* ---- shard-map mode (F020–F024) -------------------------------------- *)

(* [--against] pointed at a shard map instead of a peer directory: verify
   a sharded deployment offline. Every shard listing a data directory is
   inspected with the ordinary F00x battery, then the placement
   invariants the router maintains online are re-checked from first
   principles:

   - F024: the shards must agree on all DDL (hierarchies and relation
     schemas) — the router replicates every DDL statement to every
     shard, so a disagreement means a shard missed one.
   - F020: every stored tuple must lie on a shard in the cover of its
     first coordinate (a misplaced tuple would be invisible to routed
     reads that restrict their scatter to the cover).
   - F021: a tuple whose cover names several shards (a cross-subtree
     generalization) must be present with the same sign on every
     covered shard that has a directory — a missing or opposite-signed
     replica is cross-shard divergence.

   Node ids are catalog-local, so tuples are compared across shards by
   node label, exactly like the peer-divergence checks above. *)

let trim_dir d =
  let n = String.length d in
  let rec last i = if i > 0 && d.[i - 1] = '/' then last (i - 1) else i in
  let k = last n in
  if k = n then d else String.sub d 0 k

let ddl_signature cat =
  let hs =
    Catalog.hierarchies cat
    |> List.map (fun h ->
           (Hr_util.Symbol.name (Hierarchy.domain h), rendered_hierarchy h))
    |> List.sort compare
  in
  let rs =
    Catalog.relations cat
    |> List.map (fun r -> (Relation.name r, Schema.names (Relation.schema r)))
    |> List.sort compare
  in
  (hs, rs)

(* A tuple's coordinates as labels in its own catalog — the
   process-independent identity used to find its replica on a peer. *)
let tuple_labels schema (t : Relation.tuple) =
  List.init (Schema.arity schema) (fun i ->
      Hierarchy.node_label (Schema.hierarchy schema i) (Item.coord t.Relation.item i))

let tuple_string schema (t : Relation.tuple) =
  Printf.sprintf "%s(%s)"
    (match t.Relation.sign with Types.Pos -> "+" | Types.Neg -> "-")
    (String.concat ", " (tuple_labels schema t))

(* The replica of [t] on a peer shard, found by label. [None] means a
   label does not resolve there (hierarchy divergence — F024's
   business); [Some sign] is the sign the peer stores, if any. *)
let find_on_peer peer_rel labels =
  let schema = Relation.schema peer_rel in
  let coords =
    List.mapi (fun i l -> Hierarchy.find (Schema.hierarchy schema i) l) labels
  in
  if List.exists Option.is_none coords then None
  else
    let coords = Array.of_list (List.map Option.get coords) in
    Some
      (List.find_map
         (fun (p : Relation.tuple) ->
           if Item.coords p.Relation.item = coords then Some p.Relation.sign
           else None)
         (Relation.tuples peer_rel))

let check_sharded acc ~dir ~primary map_path =
  match Shard_map.load map_path with
  | Error msg ->
    emit acc Critical "F022" map_path "shard map does not load: %s" msg
  | Ok map ->
    let states =
      List.filter_map
        (fun (s : Shard_map.shard) ->
          match s.Shard_map.dir with
          | None ->
            emit acc Warning "F023" map_path
              "shard %d (%s:%d) declares no data directory; its placement \
               cannot be verified offline"
              s.Shard_map.id s.Shard_map.host s.Shard_map.port;
            None
          | Some sdir ->
            let st =
              if trim_dir sdir = trim_dir dir then primary else inspect acc sdir
            in
            let materialized =
              match st with Some { s_cat = Some cat; _ } -> Some cat | _ -> None
            in
            (match materialized with
            | None ->
              (* [inspect] already reported why (F001/F003/F010/...);
                 this finding ties the failure back to the map. *)
              emit acc Critical "F023" sdir
                "shard %d's directory cannot be materialized; its placement \
                 cannot be verified"
                s.Shard_map.id
            | Some _ -> ());
            Option.map (fun cat -> (s, cat)) materialized)
        map.Shard_map.shards
    in
    (* F024: all materialized shards must agree on DDL. *)
    (match states with
    | [] -> ()
    | ((s0 : Shard_map.shard), c0) :: rest ->
      let sig0 = ddl_signature c0 in
      List.iter
        (fun ((s : Shard_map.shard), c) ->
          if ddl_signature c <> sig0 then
            emit acc Critical "F024"
              (Printf.sprintf "shard %d vs shard %d" s0.Shard_map.id s.Shard_map.id)
              "shards disagree on DDL (hierarchies or relation schemas); the \
               router replicates every DDL statement, so a shard missed one")
        rest);
    (* F020 + F021 per stored tuple. *)
    let reported = Hashtbl.create 16 in
    List.iter
      (fun ((s : Shard_map.shard), cat) ->
        List.iter
          (fun rel ->
            let schema = Relation.schema rel in
            if Schema.arity schema > 0 then
              let h = Schema.hierarchy schema 0 in
              let where =
                Printf.sprintf "shard %d (%s): relation %s" s.Shard_map.id
                  (Option.value s.Shard_map.dir ~default:"?")
                  (Relation.name rel)
              in
              List.iter
                (fun (t : Relation.tuple) ->
                  let cover = Shard_map.cover map h (Item.coord t.Relation.item 0) in
                  if not (List.mem s.Shard_map.id cover) then
                    emit acc Critical "F020" where
                      "misplaced tuple %s: its first coordinate routes to \
                       shard(s) [%s], not here"
                      (tuple_string schema t)
                      (String.concat ", " (List.map string_of_int cover))
                  else
                    let labels = tuple_labels schema t in
                    List.iter
                      (fun peer_id ->
                        if peer_id <> s.Shard_map.id then
                          match
                            List.find_opt
                              (fun ((p : Shard_map.shard), _) ->
                                p.Shard_map.id = peer_id)
                              states
                          with
                          | None -> () (* no directory: F023 already said so *)
                          | Some (peer, peer_cat) -> (
                            (* sign-free key: a +/- disagreement would
                               otherwise be reported once from each side *)
                            let key =
                              ( Relation.name rel,
                                labels,
                                min s.Shard_map.id peer_id,
                                max s.Shard_map.id peer_id )
                            in
                            if not (Hashtbl.mem reported key) then begin
                              Hashtbl.add reported key ();
                              match Catalog.find_relation peer_cat (Relation.name rel) with
                              | None -> () (* relation set divergence: F024 *)
                              | Some peer_rel -> (
                                match find_on_peer peer_rel labels with
                                | None -> () (* label unresolvable: F024 *)
                                | Some None ->
                                  emit acc Critical "F021" where
                                    "cross-subtree tuple %s covers shard %d but \
                                     is absent there"
                                    (tuple_string schema t) peer.Shard_map.id
                                | Some (Some sign) ->
                                  if sign <> t.Relation.sign then
                                    emit acc Critical "F021" where
                                      "cross-subtree tuple %s has the opposite \
                                       sign on shard %d"
                                      (tuple_string schema t) peer.Shard_map.id)
                            end))
                      cover)
                (Relation.tuples rel))
          (Catalog.relations cat))
      states

(* ---- driver ---------------------------------------------------------- *)

let run ?against dir =
  Hr_obs.Metrics.incr m_runs;
  let t0 = Hr_obs.Metrics.now_ns () in
  let acc = { findings = [] } in
  let st =
    try inspect acc dir
    with e ->
      emit acc Critical "F000" dir "internal error: %s" (Printexc.to_string e);
      None
  in
  (match against with
  | None -> ()
  | Some peer when Shard_map.looks_like_map peer -> (
    try check_sharded acc ~dir ~primary:st peer
    with e ->
      emit acc Critical "F000" peer "internal error: %s" (Printexc.to_string e))
  | Some peer -> (
    try
      match (st, inspect acc peer) with
      | Some a, Some b -> check_divergence acc a b
      | _ ->
        emit acc Warning "F017"
          (Printf.sprintf "%s vs %s" dir peer)
          "cannot compare: one side did not materialize"
    with e ->
      emit acc Critical "F000" peer "internal error: %s" (Printexc.to_string e)));
  let findings = List.rev acc.findings in
  let duration_ns = Hr_obs.Metrics.now_ns () - t0 in
  Hr_obs.Metrics.observe h_duration duration_ns;
  List.iter
    (fun f ->
      match f.severity with
      | Critical -> Hr_obs.Metrics.incr m_critical
      | Warning -> Hr_obs.Metrics.incr m_warning)
    findings;
  let hierarchies, relations =
    match st with
    | Some { s_cat = Some cat; _ } ->
      (List.length (Catalog.hierarchies cat), List.length (Catalog.relations cat))
    | _ -> (0, 0)
  in
  {
    dir;
    against;
    findings;
    wal_records =
      (match st with Some s -> List.length s.s_scan.Wal.records | None -> 0);
    hierarchies;
    relations;
    head_lsn = (match st with Some s -> s_head s | None -> 0);
    base_lsn = (match st with Some s -> s.s_base | None -> 0);
    duration_ns;
  }

let clean (r : report) = r.findings = []

let has_critical (r : report) =
  List.exists (fun f -> f.severity = Critical) r.findings

let render_text (r : report) =
  let buf = Buffer.create 256 in
  let target =
    match r.against with None -> r.dir | Some p -> r.dir ^ " (against " ^ p ^ ")"
  in
  (match r.findings with
  | [] -> Buffer.add_string buf (Printf.sprintf "fsck %s: clean\n" target)
  | fs ->
    Buffer.add_string buf
      (Printf.sprintf "fsck %s: %d finding%s\n" target (List.length fs)
         (if List.length fs = 1 then "" else "s"));
    List.iter
      (fun f ->
        Buffer.add_string buf
          (Printf.sprintf "  [%s] %s %s: %s\n" f.code (severity_label f.severity)
             f.where f.message))
      fs);
  Buffer.add_string buf
    (Printf.sprintf
       "  checked: %d wal record(s), %d hierarchies, %d relations; head LSN %d \
        (base %d) in %.1fms\n"
       r.wal_records r.hierarchies r.relations r.head_lsn r.base_lsn
       (float_of_int r.duration_ns /. 1e6));
  Buffer.contents buf

let render_json (r : report) =
  J.to_string
    (J.Obj
       [
         ("dir", J.String r.dir);
         ( "against",
           match r.against with None -> J.Null | Some p -> J.String p );
         ("clean", J.Bool (clean r));
         ( "findings",
           J.List
             (List.map
                (fun f ->
                  J.Obj
                    [
                      ("code", J.String f.code);
                      ("severity", J.String (severity_label f.severity));
                      ("where", J.String f.where);
                      ("message", J.String f.message);
                    ])
                r.findings) );
         ("wal_records", J.Int r.wal_records);
         ("hierarchies", J.Int r.hierarchies);
         ("relations", J.Int r.relations);
         ("head_lsn", J.Int r.head_lsn);
         ("base_lsn", J.Int r.base_lsn);
         ("duration_ns", J.Int r.duration_ns);
       ])
  ^ "\n"
